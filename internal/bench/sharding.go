package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/sharding"
	"repro/internal/transport"
)

// ---- Sharded multi-channel throughput ------------------------------------

// ShardBenchCell parameterizes one durable multi-channel throughput
// measurement against a sharded deployment: Channels load channels spread
// round-robin over Shards consensus groups, with every client closed-loop
// gated on the DURABLE watermark — an envelope counts only once its
// block's record is fsynced in the owning shard's unified commit log.
//
// The cell models a LAN: every link carries LinkDelay of one-way
// propagation. That puts the bound on the resource sharding actually
// multiplies: a consensus group runs its protocol rounds serially, so one
// group's ordering rate has a hard ceiling of BatchSize envelopes per
// round latency — a ceiling more channels can never raise, because every
// channel's envelopes compete for the same group's batches. A second
// group runs its rounds independently, and the round-trip waits overlap
// in time, so the ceilings add. The comparison measures exactly that
// (durable, watermark-gated) aggregate, and the result is robust even on
// a single-core host because waiting on the network costs no CPU.
type ShardBenchCell struct {
	// Shards is the number of consensus groups (1 = unsharded baseline).
	Shards int
	// Channels is the number of load channels, assigned ch-<i> -> shard
	// i mod Shards (default 2, so the baseline carries the same
	// multi-channel load on one group).
	Channels int
	// NodesPerShard is each group's replica count (default 4).
	NodesPerShard int
	// BlockSize is envelopes per block (default 8). Partial-block cutting
	// is disabled, so durable blocks always hold exactly BlockSize
	// envelopes and the watermark converts to envelopes exactly.
	BlockSize int
	// EnvSize is the envelope payload size (default 128).
	EnvSize int
	// BatchSize caps envelopes per consensus decision (default 64): with
	// serial rounds it is the per-group throughput ceiling's numerator.
	BatchSize int
	// LinkDelay is the modelled one-way propagation delay on every link
	// (default 2ms, a LAN with a switch hop or two).
	LinkDelay time.Duration
	// WindowBlocks is the per-channel closed-loop window in blocks
	// (default 32): outstanding-but-not-yet-durable envelopes are capped
	// at WindowBlocks x BlockSize, sized to keep batches full.
	WindowBlocks int
	// Warmup and Measure set the measurement schedule.
	Warmup, Measure time.Duration
	// SigningWorkers per node; DisableSigning ablates block signing so the
	// cell isolates ordering + durability (the tracked cell sets it).
	SigningWorkers int
	DisableSigning bool
}

func (c ShardBenchCell) withDefaults() ShardBenchCell {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Channels <= 0 {
		c.Channels = 2
	}
	if c.NodesPerShard <= 0 {
		c.NodesPerShard = 4
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 8
	}
	if c.EnvSize <= 0 {
		c.EnvSize = 128
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 2 * time.Millisecond
	}
	if c.WindowBlocks <= 0 {
		c.WindowBlocks = 32
	}
	if c.Warmup <= 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = 1500 * time.Millisecond
	}
	if c.SigningWorkers <= 0 {
		c.SigningWorkers = 2
	}
	return c
}

// TrackedShardingCell is the canonical comparison cell: the one
// BENCH_sharding.json records and CI gates on.
func TrackedShardingCell() ShardBenchCell {
	return ShardBenchCell{
		Channels:       2,
		NodesPerShard:  4,
		BlockSize:      8,
		EnvSize:        128,
		BatchSize:      64,
		LinkDelay:      2 * time.Millisecond,
		WindowBlocks:   32,
		DisableSigning: true,
	}
}

// ShardBenchRow is one measured sharded configuration.
type ShardBenchRow struct {
	Shards    int
	Channels  int
	BlockSize int
	EnvSize   int
	// TxPerSec is aggregate DURABLE envelope throughput across all
	// channels (watermark-gated, not ordering-gated).
	TxPerSec    float64
	BlockPerSec float64
	// PerShardTxPerSec breaks the aggregate down by shard, in shard order.
	PerShardTxPerSec []float64
}

// RunShardBenchCell measures one cell: build the sharded service durably
// rooted at dataDir, drive every channel with a watermark-gated closed
// loop, and report aggregate durable throughput.
func RunShardBenchCell(cell ShardBenchCell, dataDir string) (ShardBenchRow, error) {
	cell = cell.withDefaults()
	if dataDir == "" {
		return ShardBenchRow{}, fmt.Errorf("bench: sharding cell needs a data dir (it measures durable throughput)")
	}

	m := sharding.Map{Channels: make(map[string]sharding.ShardID, cell.Channels), Strict: true}
	for k := 0; k < cell.Shards; k++ {
		m.Shards = append(m.Shards, sharding.ShardID(k))
	}
	channels := make([]string, cell.Channels)
	owner := make(map[string]sharding.ShardID, cell.Channels)
	for i := 0; i < cell.Channels; i++ {
		ch := fmt.Sprintf("ch-%d", i)
		channels[i] = ch
		owner[ch] = sharding.ShardID(i % cell.Shards)
		m.Channels[ch] = owner[ch]
	}

	network := transport.NewInProcNetwork(transport.InProcConfig{
		Latency: transport.FixedLatency(cell.LinkDelay),
	})
	defer network.Close()
	svc, err := sharding.NewService(sharding.ServiceConfig{
		Map:                m,
		NodesPerShard:      cell.NodesPerShard,
		BlockSize:          cell.BlockSize,
		BatchSize:          cell.BatchSize,
		CheckpointInterval: 64,
		RequestTimeout:     5 * time.Minute, // saturation must not trigger leader changes
		SigningWorkers:     cell.SigningWorkers,
		DisableSigning:     cell.DisableSigning,
		DataDir:            dataDir,
		Network:            network,
	})
	if err != nil {
		return ShardBenchRow{}, err
	}
	defer svc.Stop()
	router, closeRouter, err := svc.NewRouter("shardbench", false)
	if err != nil {
		return ShardBenchRow{}, err
	}
	defer closeRouter()

	// Watermark readers: the channel's durable height at its shard leader.
	watermark := func(ch string) uint64 {
		return svc.Cluster(owner[ch]).Nodes[0].PersistWatermark(ch)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, ch := range channels {
		gen := NewEnvelopeGen(ch, fmt.Sprintf("shardload-%d", i), cell.EnvSize, int64(i))
		window := uint64(cell.WindowBlocks * cell.BlockSize)
		channel := ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sent uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if sent-watermark(channel)*uint64(cell.BlockSize) >= window {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				raw, _ := gen.Next()
				switch router.BroadcastRaw(raw) {
				case fabric.StatusSuccess:
					sent++
				case fabric.StatusServiceUnavailable:
					time.Sleep(time.Millisecond)
				default:
					return
				}
			}
		}()
	}

	snapshot := func() map[string]uint64 {
		out := make(map[string]uint64, len(channels))
		for _, ch := range channels {
			out[ch] = watermark(ch)
		}
		return out
	}
	time.Sleep(cell.Warmup)
	before := snapshot()
	start := time.Now()
	time.Sleep(cell.Measure)
	after := snapshot()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	perShard := make([]float64, cell.Shards)
	var blocks uint64
	for _, ch := range channels {
		delta := after[ch] - before[ch]
		blocks += delta
		perShard[int(owner[ch])] += float64(delta*uint64(cell.BlockSize)) / elapsed.Seconds()
	}
	return ShardBenchRow{
		Shards:           cell.Shards,
		Channels:         cell.Channels,
		BlockSize:        cell.BlockSize,
		EnvSize:          cell.EnvSize,
		TxPerSec:         float64(blocks*uint64(cell.BlockSize)) / elapsed.Seconds(),
		BlockPerSec:      float64(blocks) / elapsed.Seconds(),
		PerShardTxPerSec: perShard,
	}, nil
}

// RunShardingComparison measures the same multi-channel cell twice — every
// channel on ONE consensus group, then spread over TWO — quantifying what
// the shard layer buys: independent groups running their serial protocol
// rounds concurrently, so the per-group throughput ceiling adds instead
// of being shared.
func RunShardingComparison(cell ShardBenchCell, dataDir string) (single, sharded ShardBenchRow, err error) {
	cell = cell.withDefaults()
	cell.Shards = 1
	single, err = RunShardBenchCell(cell, filepath.Join(dataDir, "single"))
	if err != nil {
		return single, sharded, err
	}
	cell.Shards = 2
	sharded, err = RunShardBenchCell(cell, filepath.Join(dataDir, "sharded"))
	return single, sharded, err
}

// BestShardingComparison runs the comparison `rounds` times and returns
// the pair with the highest scaling ratio. Like BestDurabilityComparison,
// this filters shared-machine noise: a noisy neighbor mid-run only ever
// LOWERS one side's measured rate (it cannot make two groups' protocol
// rounds overlap better than the link delay allows), so the best round
// estimates the achievable scaling while a real routing or storage
// regression drags every round down and trips the gate.
func BestShardingComparison(cell ShardBenchCell, dataDir string, rounds int) (single, sharded ShardBenchRow, err error) {
	if rounds < 1 {
		rounds = 1
	}
	best := -1.0
	for i := 0; i < rounds; i++ {
		dir, err := os.MkdirTemp(dataDir, "round")
		if err != nil {
			return single, sharded, err
		}
		s1, s2, err := RunShardingComparison(cell, dir)
		if err != nil {
			return single, sharded, err
		}
		if s1.TxPerSec <= 0 {
			continue
		}
		if scale := s2.TxPerSec / s1.TxPerSec; scale > best {
			best = scale
			single, sharded = s1, s2
		}
	}
	if best < 0 {
		return single, sharded, fmt.Errorf("bench: no round produced throughput")
	}
	return single, sharded, nil
}

// ShardingReport is the serialized comparison, written to
// BENCH_sharding.json at the repo root so the scale-out factor's
// trajectory is tracked across PRs (a regression in the routing layer or
// the per-shard storage isolation shows up as a falling Scaling).
type ShardingReport struct {
	// Cell is the measured configuration with every default resolved, so
	// the cell is reproducible from the JSON alone.
	Cell ShardBenchCell
	// Env records the machine/runtime the numbers were produced under.
	Env EnvInfo
	// Single and Sharded are the two measured rows (1 group vs 2 groups,
	// identical load).
	Single, Sharded ShardBenchRow
	// Scaling is Sharded.TxPerSec / Single.TxPerSec.
	Scaling float64
}

// NewShardingReport assembles a report from one comparison.
func NewShardingReport(cell ShardBenchCell, single, sharded ShardBenchRow) ShardingReport {
	rep := ShardingReport{Cell: cell.withDefaults(), Env: CaptureEnv(), Single: single, Sharded: sharded}
	if single.TxPerSec > 0 {
		rep.Scaling = sharded.TxPerSec / single.TxPerSec
	}
	return rep
}

// WriteShardingReport writes the report as indented JSON.
func WriteShardingReport(path string, rep ShardingReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
