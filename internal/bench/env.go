package bench

import (
	"os"
	"runtime"
)

// EnvInfo records the runtime environment a benchmark artifact was
// produced under. Every tracked BENCH_*.json embeds one: a number that
// moved because CI changed machines must be distinguishable from a number
// that moved because the code changed.
type EnvInfo struct {
	// GoVersion is the toolchain that built the benchmark binary.
	GoVersion string
	// GOOS and GOARCH identify the platform.
	GOOS, GOARCH string
	// NumCPU is the machine's logical CPU count.
	NumCPU int
	// GOMAXPROCS is the scheduler parallelism the run actually used (the
	// tracked cells pin this to 1 for cross-machine comparability).
	GOMAXPROCS int
	// GOGC is the garbage-collector target percentage ("" when unset).
	GOGC string `json:",omitempty"`
}

// CaptureEnv snapshots the current process environment.
func CaptureEnv() EnvInfo {
	return EnvInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOGC:       os.Getenv("GOGC"),
	}
}
