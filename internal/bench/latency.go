package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
)

// stageFamilies are the hot-path stage histograms of the observability
// layer, in pipeline order. Each family merges every labeled point (all
// nodes of the cluster, or all frontends), so the report reads as "the
// cluster's stage distribution", not one node's.
var stageFamilies = []struct{ Stage, Family string }{
	{"decide", "repro_stage_decide_seconds"},           // broadcast received -> consensus decided
	{"fsync", "repro_stage_fsync_seconds"},             // decided -> decision fsynced (durability gate)
	{"disseminate", "repro_stage_disseminate_seconds"}, // fsynced -> block disseminated
	{"deliver", "repro_stage_deliver_seconds"},         // disseminated -> frontend released
	{"total", "repro_stage_total_seconds"},             // broadcast received -> frontend released
}

// StageLatency is one stage's measured distribution. Quantiles are
// bucket-interpolated (the histograms are fixed-bucket), so they are
// estimates with bucket-width resolution — good for trajectory tracking,
// not for microsecond-exact claims.
type StageLatency struct {
	// Stage names the pipeline segment.
	Stage string
	// Samples is how many spans the stage observed.
	Samples uint64
	// P50Ms, P95Ms, P99Ms are interpolated quantiles in milliseconds.
	P50Ms, P95Ms, P99Ms float64
}

// LatencyReport is the serialized per-stage latency breakdown, written to
// BENCH_latency.json at the repo root so each stage's trajectory is
// tracked across PRs (a regression in, say, the group-commit path shows
// up in the fsync stage without moving the others).
type LatencyReport struct {
	// Cell is the measured configuration in resolved form.
	Cell Fig7Cell
	// Env records the machine/runtime the numbers were produced under.
	Env EnvInfo
	// Stages is the pipeline breakdown, in order.
	Stages []StageLatency
}

// NewLatencyReport reads the stage histograms out of a registry the cell
// ran with. Stages that observed nothing are reported with zero samples
// rather than dropped, keeping the JSON schema stable.
func NewLatencyReport(cell Fig7Cell, reg *obs.Registry) LatencyReport {
	rep := LatencyReport{Cell: cell.withDefaults(), Env: CaptureEnv()}
	for _, sf := range stageFamilies {
		fam := reg.Family(sf.Family)
		s := StageLatency{Stage: sf.Stage, Samples: fam.Count()}
		if s.Samples > 0 {
			s.P50Ms = fam.Quantile(0.50) * 1000
			s.P95Ms = fam.Quantile(0.95) * 1000
			s.P99Ms = fam.Quantile(0.99) * 1000
		}
		rep.Stages = append(rep.Stages, s)
	}
	return rep
}

// RunLatencyCell runs one instrumented Figure-7 cell and returns the
// stage breakdown alongside the throughput row. The registry is created
// here (overriding any the caller put in the cell) so the report only
// ever reads a single run's histograms.
func RunLatencyCell(cell Fig7Cell) (LatencyReport, Fig7Row, error) {
	reg := obs.NewRegistry()
	cell.Metrics = reg
	row, err := RunFigure7Cell(cell)
	if err != nil {
		return LatencyReport{}, row, err
	}
	rep := NewLatencyReport(cell, reg)
	return rep, row, nil
}

// WriteLatencyReport writes the report as indented JSON.
func WriteLatencyReport(path string, rep LatencyReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal latency report: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
