package bench

import (
	"os"
	"testing"
	"time"

	"repro/internal/storage/retention"
)

// TestWALGroupCommitRate is the acceptance floor for the durable append
// path: concurrent fsynced appends must sustain at least 1k/s (group
// commit amortizes each fsync across every append queued behind it, so
// even slow disks clear this by a wide margin).
func TestWALGroupCommitRate(t *testing.T) {
	row, err := RunWALBench(WALBenchConfig{
		Dir:                t.TempDir(),
		Appenders:          32,
		AppendsPerAppender: 64,
		RecordSize:         512,
	})
	if err != nil {
		t.Fatalf("RunWALBench: %v", err)
	}
	t.Logf("group-commit WAL: %.0f appends/s (%d appenders, %dB records)",
		row.AppendsPerSec, row.Appenders, row.RecordSize)
	if row.AppendsPerSec < 1000 {
		t.Fatalf("group-commit WAL sustained %.0f appends/s, want >= 1000", row.AppendsPerSec)
	}
}

func TestRunDurableFigure7CellSmoke(t *testing.T) {
	cell := Fig7Cell{
		Nodes:     4,
		BlockSize: 10,
		EnvSize:   40,
		Receivers: 1,
		Clients:   4,
		Window:    200,
		Warmup:    300 * time.Millisecond,
		Measure:   700 * time.Millisecond,
		DataDir:   t.TempDir(),
	}
	row, err := RunFigure7Cell(cell)
	if err != nil {
		t.Fatalf("RunFigure7Cell (durable): %v", err)
	}
	if row.TxPerSec <= 0 || row.BlockPerSec <= 0 {
		t.Fatalf("no throughput with durability on: %+v", row)
	}
	t.Logf("durable cell: %.0f tx/s, %.0f blocks/s", row.TxPerSec, row.BlockPerSec)
}

// durabilityCell is the tracked durability cell: the same Figure-7 style
// workload BENCH_durability.json has carried since PR 1, plus the shared
// commit queue's production tuning (a 1 ms fsync coalescing window —
// with four co-located nodes the waves would otherwise contend the one
// filesystem journal).
func durabilityCell() Fig7Cell {
	return Fig7Cell{
		Nodes:          4,
		BlockSize:      10,
		EnvSize:        40,
		Receivers:      1,
		Clients:        4,
		Window:         200,
		Warmup:         300 * time.Millisecond,
		Measure:        700 * time.Millisecond,
		CommitMaxDelay: time.Millisecond,
	}
}

// durableFractionFloor is the checked-in floor for the durable-throughput
// gate: the measured DurableFraction on the tracked cell may not fall
// below it. History: serialized fsyncs measured 0.376; the shared commit
// queue + async decision logging lifted the band to ~0.55-0.62 (floor
// 0.45); the unified commit log (one fsync per wave instead of two) plus
// decision-gated early dissemination (sends no longer wait for the block
// put) lifted it again, to ~0.65-0.75 on the reference 1-core cell. The
// floor sits below that band to absorb CI noise while still catching a
// regression toward either the two-log or the wait-for-put behavior.
const durableFractionFloor = 0.60

// contendedSanityFloor is the fraction floor applied when the gate runs
// inside a full `go test ./...` sweep: other packages' tests share the
// machine and starve the measurement, so only a catastrophic regression
// (a return to fully serialized fsyncs, measured at 0.376) is
// detectable. CI's dedicated bench-smoke step runs the test alone with
// BENCH_FLOOR_ENFORCE=1 and applies the real floor.
const contendedSanityFloor = 0.30

// TestDurableFractionFloor is the bench smoke gate (wired into CI as a
// dedicated, uncontended step with BENCH_FLOOR_ENFORCE=1): it measures
// the tracked cell and fails when the durable hot path regresses below
// the checked-in floor. Best-of-3: shared CI boxes routinely skew a
// single pair by a noisy-neighbor burst on one side (interference can
// only lower the fraction, never raise it), while a real regression
// drags all three rounds down.
func TestDurableFractionFloor(t *testing.T) {
	memory, durable, err := BestDurabilityComparison(durabilityCell(), t.TempDir(), 3)
	if err != nil {
		t.Fatalf("BestDurabilityComparison: %v", err)
	}
	if memory.TxPerSec <= 0 || durable.TxPerSec <= 0 {
		t.Fatalf("no throughput: memory %+v durable %+v", memory, durable)
	}
	floor := durableFractionFloor
	if os.Getenv("BENCH_FLOOR_ENFORCE") != "1" {
		floor = contendedSanityFloor
	}
	frac := durable.TxPerSec / memory.TxPerSec
	t.Logf("durable fraction: %.3f (memory %.0f tx/s, durable %.0f tx/s, floor %.2f)",
		frac, memory.TxPerSec, durable.TxPerSec, floor)
	if frac < floor {
		t.Fatalf("durable fraction %.3f below floor %.2f: the durable hot path regressed", frac, floor)
	}
}

// TestDurabilityComparisonTrajectory runs one small Figure-7 cell twice
// (in-memory and durable) and writes the result to BENCH_durability.json
// at the repo root, so the cost of the fsync discipline is tracked across
// PRs.
func TestDurabilityComparisonTrajectory(t *testing.T) {
	cell := durabilityCell()
	memory, durable, err := BestDurabilityComparison(cell, t.TempDir(), 3)
	if err != nil {
		t.Fatalf("BestDurabilityComparison: %v", err)
	}
	if memory.TxPerSec <= 0 || durable.TxPerSec <= 0 {
		t.Fatalf("no throughput: memory %+v durable %+v", memory, durable)
	}
	rep := NewDurabilityReport(cell, memory, durable)
	retRow, err := RunRetentionBench(RetentionBenchConfig{
		Dir:    t.TempDir(),
		Blocks: 600,
		Policy: retention.Policy{RetainBytes: 64 << 10},
	})
	if err != nil {
		t.Fatalf("RunRetentionBench: %v", err)
	}
	rep.Retention = &retRow
	if err := WriteDurabilityReport("../../BENCH_durability.json", rep); err != nil {
		t.Fatalf("writing report: %v", err)
	}
	t.Logf("durability: %.0f tx/s in-memory, %.0f tx/s durable (%.0f%%); retention: %d B before / %d B after compaction (peak %d B)",
		memory.TxPerSec, durable.TxPerSec, 100*rep.DurableFraction,
		retRow.BytesBeforeCompaction, retRow.BytesAfterCompaction, retRow.PeakBytes)
}

// TestDiskGrowthBoundedUnderRetention is the disk-growth regression
// check (wired into CI's race-detector job): a sustained append workload
// with a retention cap must keep the block store's on-disk size under
// the cap plus bounded slack (whole-segment pruning granularity plus the
// block in flight), and old segments must actually be deleted.
func TestDiskGrowthBoundedUnderRetention(t *testing.T) {
	const (
		capBytes     = 64 << 10
		segmentBytes = 8 << 10
	)
	row, err := RunRetentionBench(RetentionBenchConfig{
		Dir:          t.TempDir(),
		Blocks:       2000,
		SegmentBytes: segmentBytes,
		Policy:       retention.Policy{RetainBytes: capBytes},
	})
	if err != nil {
		t.Fatalf("RunRetentionBench: %v", err)
	}
	t.Logf("retention bench: peak %d B, before %d B, after %d B, floor %d, %d compactions",
		row.PeakBytes, row.BytesBeforeCompaction, row.BytesAfterCompaction, row.Floor, row.Compactions)
	if row.Compactions == 0 || row.Floor == 0 {
		t.Fatalf("retention never compacted: %+v", row)
	}
	// Whole segments are the pruning granularity and one oversized
	// append can land before the next compaction runs.
	slack := int64(2*segmentBytes + 4096)
	if row.PeakBytes > capBytes+slack {
		t.Fatalf("block store peaked at %d B, cap %d B (+%d B slack)", row.PeakBytes, capBytes, slack)
	}
	if row.BytesAfterCompaction*2 >= row.AppendedBytes {
		t.Fatalf("compaction deleted nothing: %d B on disk after appending ~%d B",
			row.BytesAfterCompaction, row.AppendedBytes)
	}
	// The before/after pair must bracket a real compaction (sampled
	// immediately around the CompactTo call): identical values would mean
	// the measurement regressed to sampling outside the compaction and
	// this gate is vacuous.
	if row.BytesBeforeCompaction <= row.BytesAfterCompaction {
		t.Fatalf("compaction sampling vacuous: before %d B <= after %d B",
			row.BytesBeforeCompaction, row.BytesAfterCompaction)
	}
}
