package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// WALBenchConfig parameterizes the group-commit append benchmark.
type WALBenchConfig struct {
	// Dir is where the WAL lives (a fresh temp directory per run).
	Dir string
	// Appenders is the number of concurrent appending goroutines; group
	// commit amortizes one fsync across all of them, so rate scales with
	// concurrency until the disk saturates.
	Appenders int
	// AppendsPerAppender is how many records each goroutine writes.
	AppendsPerAppender int
	// RecordSize is the payload size per record (a decision-log record is
	// roughly batch-size x envelope-size).
	RecordSize int
	// NoSync measures the raw buffered write path for comparison.
	NoSync bool
}

func (c WALBenchConfig) withDefaults() WALBenchConfig {
	if c.Appenders <= 0 {
		c.Appenders = 32
	}
	if c.AppendsPerAppender <= 0 {
		c.AppendsPerAppender = 64
	}
	if c.RecordSize <= 0 {
		c.RecordSize = 512
	}
	return c
}

// WALBenchRow is one measured WAL configuration.
type WALBenchRow struct {
	Appenders     int
	RecordSize    int
	AppendsPerSec float64
	Synced        bool
}

// RunWALBench measures durable appends per second through the group-commit
// writer: every Append blocks until its record is fsynced, and the rate
// shows how many such calls the log absorbs when they arrive concurrently.
func RunWALBench(cfg WALBenchConfig) (WALBenchRow, error) {
	cfg = cfg.withDefaults()
	wal, err := storage.OpenWAL(storage.WALConfig{Dir: cfg.Dir, NoSync: cfg.NoSync})
	if err != nil {
		return WALBenchRow{}, err
	}
	defer wal.Close()

	rec := make([]byte, cfg.RecordSize)
	var failures atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Appenders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.AppendsPerAppender; i++ {
				if _, err := wal.Append(rec); err != nil {
					failures.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failures.Load(); n > 0 {
		return WALBenchRow{}, fmt.Errorf("bench: %d appenders failed", n)
	}
	total := cfg.Appenders * cfg.AppendsPerAppender
	return WALBenchRow{
		Appenders:     cfg.Appenders,
		RecordSize:    cfg.RecordSize,
		AppendsPerSec: float64(total) / elapsed.Seconds(),
		Synced:        !cfg.NoSync,
	}, nil
}

// RunDurabilityComparison measures the same Figure-7 style cell twice,
// in-memory and durable, quantifying what the fsync discipline costs (the
// number the paper's evaluation silently excludes by running tmpfs-free
// replicas).
func RunDurabilityComparison(cell Fig7Cell, dataDir string) (memory, durable Fig7Row, err error) {
	cell.DataDir = ""
	memory, err = RunFigure7Cell(cell)
	if err != nil {
		return memory, durable, err
	}
	cell.DataDir = dataDir
	durable, err = RunFigure7Cell(cell)
	return memory, durable, err
}

// BestDurabilityComparison runs the comparison `rounds` times and returns
// the pair with the highest durable fraction. The tracked cell runs on
// shared 1-core CI machines where a noisy neighbor mid-run skews one side
// of a single pair by 2x; interference only ever LOWERS the measured
// fraction (it cannot make the durable path look faster than it is), so
// the best of a few rounds estimates the achievable ratio while a real
// hot-path regression still drags every round down and trips the gate.
func BestDurabilityComparison(cell Fig7Cell, dataDir string, rounds int) (memory, durable Fig7Row, err error) {
	if rounds < 1 {
		rounds = 1
	}
	best := -1.0
	for i := 0; i < rounds; i++ {
		dir, err := os.MkdirTemp(dataDir, "round")
		if err != nil {
			return memory, durable, err
		}
		m, d, err := RunDurabilityComparison(cell, dir)
		if err != nil {
			return memory, durable, err
		}
		if m.TxPerSec <= 0 {
			continue
		}
		if frac := d.TxPerSec / m.TxPerSec; frac > best {
			best = frac
			memory, durable = m, d
		}
	}
	if best < 0 {
		return memory, durable, fmt.Errorf("bench: no round produced throughput")
	}
	return memory, durable, nil
}

// DurabilityReport is the serialized form of one in-memory-vs-durable
// comparison, written to BENCH_durability.json at the repo root so the
// fsync cost's trajectory is tracked across PRs (a regression in the
// group-commit path shows up as a falling DurableFraction).
type DurabilityReport struct {
	// Cell is the measured configuration, with every default resolved
	// (e.g. SigningWorkers as the nodes actually ran it, not the zero the
	// caller passed) so the cell is reproducible from the JSON alone.
	Cell Fig7Cell
	// Env records the machine/runtime the numbers were produced under.
	Env EnvInfo
	// Memory and Durable are the two measured rows.
	Memory, Durable Fig7Row
	// DurableFraction is Durable.TxPerSec / Memory.TxPerSec.
	DurableFraction float64
	// Retention, when measured, is the block-store disk-amplification
	// row: bytes on disk before/after compaction under a sustained
	// append workload with a retention cap.
	Retention *RetentionBenchRow `json:",omitempty"`
}

// NewDurabilityReport assembles a report from one comparison. The cell
// is persisted in resolved form: the nodes run with defaults applied
// (16 signing workers for a zero SigningWorkers, gigabit egress for a
// zero EgressBytesPerSec, ...), and recording the unresolved input made
// the JSON unreproducible once a default changed.
func NewDurabilityReport(cell Fig7Cell, memory, durable Fig7Row) DurabilityReport {
	rep := DurabilityReport{Cell: cell.withDefaults(), Env: CaptureEnv(), Memory: memory, Durable: durable}
	if memory.TxPerSec > 0 {
		rep.DurableFraction = durable.TxPerSec / memory.TxPerSec
	}
	return rep
}

// WriteDurabilityReport writes the report as indented JSON.
func WriteDurabilityReport(path string, rep DurabilityReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
