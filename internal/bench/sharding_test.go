package bench

import (
	"os"
	"testing"
)

// shardScalingFloor is the checked-in floor for 2-shard over 1-shard
// aggregate durable throughput on the tracked cell. The cell's round
// latency bounds one group at BatchSize per round, so two groups should
// approach 2x; measured scaling sits around 1.8x on an uncontended
// single-core host, and 1.30 leaves headroom for shared-runner noise
// while still catching a routing layer that serializes the groups (which
// would measure ~1.0x) or per-shard storage that contends (below 1.2x).
const shardScalingFloor = 1.30

// shardContendedSanityFloor applies when the gate runs contended (plain
// `go test ./...` alongside every other package): CPU thrash can eat most
// of the overlap, but two groups falling meaningfully BEHIND one group
// always indicates a real serialization bug.
const shardContendedSanityFloor = 0.80

// TestShardScalingFloor is the scale-out smoke gate (wired into CI as a
// dedicated, uncontended step with BENCH_FLOOR_ENFORCE=1): it measures
// the tracked 1-shard vs 2-shard cell and fails when sharded aggregate
// throughput regresses below the checked-in floor. Best-of-3, for the
// same reason as TestDurableFractionFloor: interference can only lower
// the measured scaling, never raise it.
func TestShardScalingFloor(t *testing.T) {
	single, sharded, err := BestShardingComparison(TrackedShardingCell(), t.TempDir(), 3)
	if err != nil {
		t.Fatalf("BestShardingComparison: %v", err)
	}
	if single.TxPerSec <= 0 || sharded.TxPerSec <= 0 {
		t.Fatalf("no throughput: single %+v sharded %+v", single, sharded)
	}
	floor := shardScalingFloor
	if os.Getenv("BENCH_FLOOR_ENFORCE") != "1" {
		floor = shardContendedSanityFloor
	}
	scaling := sharded.TxPerSec / single.TxPerSec
	t.Logf("shard scaling: %.2fx (single %.0f tx/s, sharded %.0f tx/s per-shard %v, floor %.2f)",
		scaling, single.TxPerSec, sharded.TxPerSec, sharded.PerShardTxPerSec, floor)
	if scaling < floor {
		t.Fatalf("shard scaling %.2fx below floor %.2f: sharded ordering is not scaling out", scaling, floor)
	}
}

// TestShardingComparisonTrajectory measures the tracked cell and writes
// the result to BENCH_sharding.json at the repo root, so the scale-out
// factor is tracked across PRs alongside the durability trajectory.
func TestShardingComparisonTrajectory(t *testing.T) {
	cell := TrackedShardingCell()
	single, sharded, err := BestShardingComparison(cell, t.TempDir(), 3)
	if err != nil {
		t.Fatalf("BestShardingComparison: %v", err)
	}
	if single.TxPerSec <= 0 || sharded.TxPerSec <= 0 {
		t.Fatalf("no throughput: single %+v sharded %+v", single, sharded)
	}
	rep := NewShardingReport(cell, single, sharded)
	if err := WriteShardingReport("../../BENCH_sharding.json", rep); err != nil {
		t.Fatalf("writing report: %v", err)
	}
	t.Logf("sharding: %.0f tx/s on 1 group, %.0f tx/s on 2 groups (%.2fx)",
		single.TxPerSec, sharded.TxPerSec, rep.Scaling)
}

// TestShardBenchRequiresDataDir pins the cell's contract: it measures
// durable throughput, so an in-memory run must be refused rather than
// silently measuring something else.
func TestShardBenchRequiresDataDir(t *testing.T) {
	if _, err := RunShardBenchCell(ShardBenchCell{}, ""); err == nil {
		t.Fatal("RunShardBenchCell accepted an empty data dir")
	}
}

// TestShardBenchPerShardBreakdown pins the row's accounting: per-shard
// rates must sum to the aggregate and every shard of a 2-shard run must
// carry traffic (a zero shard means routing sent everything one way).
func TestShardBenchPerShardBreakdown(t *testing.T) {
	cell := TrackedShardingCell()
	cell.Shards = 2
	cell.Warmup = 200e6  // 200ms
	cell.Measure = 500e6 // 500ms
	row, err := RunShardBenchCell(cell, t.TempDir())
	if err != nil {
		t.Fatalf("RunShardBenchCell: %v", err)
	}
	if len(row.PerShardTxPerSec) != 2 {
		t.Fatalf("per-shard breakdown has %d entries, want 2", len(row.PerShardTxPerSec))
	}
	var sum float64
	for shard, rate := range row.PerShardTxPerSec {
		if rate <= 0 {
			t.Errorf("shard %d carried no traffic", shard)
		}
		sum += rate
	}
	if diff := sum - row.TxPerSec; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("per-shard rates sum to %.2f, aggregate says %.2f", sum, row.TxPerSec)
	}
}
