package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/wan"
)

func TestLatencyRecorderPercentiles(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Median() != 0 || r.Percentile(90) != 0 {
		t.Fatal("empty recorder not zero")
	}
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if got := r.Median(); got != 50*time.Millisecond {
		t.Fatalf("median = %v", got)
	}
	if got := r.Percentile(90); got != 90*time.Millisecond {
		t.Fatalf("p90 = %v", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	r.Reset()
	if r.Count() != 0 {
		t.Fatal("reset did not clear samples")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("a", "bb")
	tb.AddRow(1, 2.5)
	tb.AddRow("xx", "y")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "2.5") {
		t.Fatalf("table output:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv output:\n%s", csv)
	}
}

func TestEnvelopeGenRoundTrip(t *testing.T) {
	gen := NewEnvelopeGen("ch", "client-7", 128, 1)
	raw, seq := gen.Next()
	client, gotSeq, ok := EnvelopeSeq(raw)
	if !ok || client != "client-7" || gotSeq != seq {
		t.Fatalf("EnvelopeSeq = %q, %d, %v", client, gotSeq, ok)
	}
	raw2, seq2 := gen.Next()
	if seq2 != seq+1 {
		t.Fatalf("sequence not increasing: %d then %d", seq, seq2)
	}
	if len(raw2) < 128 {
		t.Fatalf("envelope too small: %d", len(raw2))
	}
	// Tiny sizes are padded to hold the marker.
	small := NewEnvelopeGen("ch", "c", 1, 1)
	rawS, seqS := small.Next()
	_, gotS, ok := EnvelopeSeq(rawS)
	if !ok || gotS != seqS {
		t.Fatal("small envelope lost its marker")
	}
}

func TestRunFigure6Smoke(t *testing.T) {
	rows, err := RunFigure6([]int{1, 2}, 10, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("RunFigure6: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.SigsPerSec <= 0 {
			t.Fatalf("no signatures measured: %+v", row)
		}
	}
}

func TestRunFigure7CellSmoke(t *testing.T) {
	row, err := RunFigure7Cell(Fig7Cell{
		Nodes:     4,
		BlockSize: 10,
		EnvSize:   40,
		Receivers: 1,
		Clients:   4,
		Window:    200,
		Warmup:    300 * time.Millisecond,
		Measure:   700 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunFigure7Cell: %v", err)
	}
	if row.TxPerSec <= 0 || row.BlockPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", row)
	}
	if row.Nodes != 4 || row.EnvSize != 40 || row.Receivers != 1 {
		t.Fatalf("row labels wrong: %+v", row)
	}
}

func TestRunGeoCellSmoke(t *testing.T) {
	rows, err := RunGeoCell(GeoCell{
		Protocol:          ProtocolBFTSmart,
		BlockSize:         10,
		EnvSize:           40,
		WindowPerFrontend: 32,
		Warmup:            500 * time.Millisecond,
		Measure:           1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunGeoCell: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want one per frontend", len(rows))
	}
	for _, row := range rows {
		if row.Samples == 0 || row.MedianMs <= 0 {
			t.Fatalf("frontend %s measured nothing: %+v", row.Frontend, row)
		}
		// Geo latency must reflect WAN round trips: well above 50 ms.
		if row.MedianMs < 50 {
			t.Fatalf("frontend %s median %.1f ms implausibly low", row.Frontend, row.MedianMs)
		}
	}
}

func TestGeoNodePlacements(t *testing.T) {
	bft := nodeRegions(ProtocolBFTSmart)
	if len(bft) != 4 || bft[0] != wan.Oregon {
		t.Fatalf("BFT-SMaRt placement: %v", bft)
	}
	wheat := nodeRegions(ProtocolWheat)
	if len(wheat) != 5 || wheat[4] != wan.Virginia {
		t.Fatalf("WHEAT placement: %v", wheat)
	}
}
