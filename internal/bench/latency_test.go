package bench

import (
	"testing"
	"time"
)

// latencyCell is the tracked latency cell: the durability cell's workload
// (4 durable nodes, 10-envelope blocks, 40 B envelopes, 1 ms commit
// coalescing) so BENCH_latency.json and BENCH_durability.json describe
// the same pipeline.
func latencyCell(dataDir string) Fig7Cell {
	return Fig7Cell{
		Nodes:          4,
		BlockSize:      10,
		EnvSize:        40,
		Receivers:      1,
		Clients:        4,
		Window:         200,
		Warmup:         300 * time.Millisecond,
		Measure:        700 * time.Millisecond,
		CommitMaxDelay: time.Millisecond,
		DataDir:        dataDir,
	}
}

// TestLatencyTrajectory runs the tracked cell with the observability
// layer enabled and writes the per-stage latency breakdown to
// BENCH_latency.json at the repo root, so each pipeline stage's
// trajectory is tracked across PRs: a group-commit regression shows in
// the fsync stage, a dissemination regression in disseminate/deliver,
// without moving the others.
func TestLatencyTrajectory(t *testing.T) {
	rep, row, err := RunLatencyCell(latencyCell(t.TempDir()))
	if err != nil {
		t.Fatalf("RunLatencyCell: %v", err)
	}
	if row.TxPerSec <= 0 {
		t.Fatalf("no throughput with metrics on: %+v", row)
	}
	byStage := make(map[string]StageLatency, len(rep.Stages))
	for _, s := range rep.Stages {
		byStage[s.Stage] = s
		t.Logf("stage %-12s %7d samples  p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms",
			s.Stage, s.Samples, s.P50Ms, s.P95Ms, s.P99Ms)
	}
	// Every stage of a durable, loaded run must have observed spans: a
	// zero-sample stage means the trace broke somewhere in the pipeline.
	for _, stage := range []string{"decide", "fsync", "disseminate", "deliver", "total"} {
		s, ok := byStage[stage]
		if !ok {
			t.Fatalf("stage %q missing from report", stage)
		}
		if s.Samples == 0 {
			t.Errorf("stage %q observed no spans", stage)
		}
		if s.P50Ms < 0 || s.P99Ms < s.P50Ms {
			t.Errorf("stage %q quantiles inconsistent: p50 %.3f ms, p99 %.3f ms", stage, s.P50Ms, s.P99Ms)
		}
	}
	if t.Failed() {
		return
	}
	// The data dir is a per-run temp path; blank it so the tracked
	// artifact only diffs when the measurement changes.
	rep.Cell.DataDir = ""
	if err := WriteLatencyReport("../../BENCH_latency.json", rep); err != nil {
		t.Fatalf("writing report: %v", err)
	}
}

// TestMetricsOverheadSmoke runs the same cell with and without the
// registry and fails only on a catastrophic slowdown (> 3x): the real
// overhead guard is the allocation benchmark in internal/obs; this one
// just proves an instrumented cluster still moves traffic.
func TestMetricsOverheadSmoke(t *testing.T) {
	cell := latencyCell("")
	plain, err := RunFigure7Cell(cell)
	if err != nil {
		t.Fatalf("RunFigure7Cell (plain): %v", err)
	}
	_, instrumented, err := RunLatencyCell(cell)
	if err != nil {
		t.Fatalf("RunLatencyCell: %v", err)
	}
	if plain.TxPerSec <= 0 || instrumented.TxPerSec <= 0 {
		t.Fatalf("no throughput: plain %+v instrumented %+v", plain, instrumented)
	}
	t.Logf("metrics overhead: %.0f tx/s plain, %.0f tx/s instrumented",
		plain.TxPerSec, instrumented.TxPerSec)
	if instrumented.TxPerSec*3 < plain.TxPerSec {
		t.Fatalf("instrumented run at %.0f tx/s vs %.0f tx/s plain: metrics are not near-free",
			instrumented.TxPerSec, plain.TxPerSec)
	}
}
