package sharding

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/fabric"
)

func TestMarkCommitCodec(t *testing.T) {
	mark := EncodeMark("tx-1", []string{"alpha", "beta"}, []byte("payload"))
	xid, channels, inner, ok := DecodeMark(mark)
	if !ok || xid != "tx-1" || len(channels) != 2 || channels[0] != "alpha" ||
		channels[1] != "beta" || !bytes.Equal(inner, []byte("payload")) {
		t.Fatalf("mark round trip: xid=%q channels=%v inner=%q ok=%v", xid, channels, inner, ok)
	}
	commit := EncodeCommit("tx-1")
	if xid, ok := DecodeCommit(commit); !ok || xid != "tx-1" {
		t.Fatalf("commit round trip: xid=%q ok=%v", xid, ok)
	}
	// A record of one kind is not a record of the other, and plain
	// application payloads are neither.
	if _, _, _, ok := DecodeMark(commit); ok {
		t.Fatal("commit decoded as mark")
	}
	if _, ok := DecodeCommit(mark); ok {
		t.Fatal("mark decoded as commit")
	}
	if _, _, _, ok := DecodeMark([]byte("ordinary payload")); ok {
		t.Fatal("application payload decoded as mark")
	}
	if _, ok := DecodeCommit(nil); ok {
		t.Fatal("nil decoded as commit")
	}
}

func crossEnv(channel string, payload []byte) []byte {
	return (&fabric.Envelope{ChannelID: channel, ClientID: "c", Payload: payload}).Marshal()
}

func TestVisibilityRule(t *testing.T) {
	tr := NewVisibilityTracker()
	// A commit with no prior mark does nothing (late reader that missed
	// the mark must not show the tx without its payload).
	tr.ObserveRaw(crossEnv("ch", EncodeCommit("tx-1")))
	if tr.Visible("tx-1") {
		t.Fatal("visible without a mark")
	}
	tr.ObserveRaw(crossEnv("ch", EncodeMark("tx-1", []string{"ch"}, []byte("data"))))
	if !tr.Marked("tx-1") || tr.Visible("tx-1") {
		t.Fatalf("after mark: marked=%v visible=%v", tr.Marked("tx-1"), tr.Visible("tx-1"))
	}
	tr.ObserveRaw(crossEnv("ch", EncodeCommit("tx-1")))
	if !tr.Visible("tx-1") {
		t.Fatal("mark then commit not visible")
	}
	if !bytes.Equal(tr.Payload("tx-1"), []byte("data")) {
		t.Fatalf("staged payload lost: %q", tr.Payload("tx-1"))
	}
	// Ordinary traffic is ignored.
	tr.ObserveRaw(crossEnv("ch", []byte("app payload")))
	if tr.Marked("app payload") {
		t.Fatal("application payload tracked")
	}
}

// replayTracker re-reads a chain from genesis through an independent
// tracker — the view any late reader would compute.
func replayTracker(t *testing.T, r *Router, channel string, d time.Duration) *VisibilityTracker {
	t.Helper()
	stream, err := r.Deliver(channel, fabric.DeliverOldest())
	if err != nil {
		t.Fatalf("replay %s: %v", channel, err)
	}
	defer stream.Cancel()
	tr := NewVisibilityTracker()
	deadline := time.After(d)
	for {
		select {
		case b, ok := <-stream.Blocks():
			if !ok {
				return tr
			}
			tr.ObserveBlock(b)
		case <-deadline:
			return tr
		}
	}
}

// TestBroadcastCrossEndToEnd drives the full two-phase protocol over two
// real consensus groups: a committed tx is visible in both chains with
// its payload, an abandoned mark is visible in neither, and ResumeCommit
// finishes an interrupted commit phase.
func TestBroadcastCrossEndToEnd(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		Map: Map{
			Shards:   []ShardID{0, 1},
			Channels: map[string]ShardID{"alpha": 0, "beta": 1},
		},
		BlockSize:      1,
		DisableSigning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	router, closeFE, err := svc.NewRouter("cross", false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFE()

	channels := []string{"alpha", "beta"}
	opts := CrossOptions{Timeout: 30 * time.Second, RetryEvery: 100 * time.Millisecond}

	// Committed: visible in both chains, payload intact.
	committed := CrossTx{XID: "tx-commit", ClientID: "c", Channels: channels, Payload: []byte("both-or-neither")}
	if err := router.BroadcastCross(committed, opts); err != nil {
		t.Fatalf("BroadcastCross: %v", err)
	}

	// Aborted: a coordinator that died before phase 2 left only marks.
	for _, ch := range channels {
		st := router.BroadcastRaw(crossEnv(ch, EncodeMark("tx-abandoned", channels, []byte("never"))))
		if st != fabric.StatusSuccess {
			t.Fatalf("mark broadcast %s: %v", ch, st)
		}
	}

	// Interrupted: marks ordered, commit phase never ran — ResumeCommit
	// is the recovery path and must converge to visible everywhere.
	interrupted := CrossTx{XID: "tx-resume", ClientID: "c", Channels: channels, Payload: []byte("resumed")}
	for _, ch := range channels {
		st := router.BroadcastRaw(crossEnv(ch, EncodeMark(interrupted.XID, channels, interrupted.Payload)))
		if st != fabric.StatusSuccess {
			t.Fatalf("mark broadcast %s: %v", ch, st)
		}
	}
	if err := router.ResumeCommit(interrupted, opts); err != nil {
		t.Fatalf("ResumeCommit: %v", err)
	}

	for _, ch := range channels {
		tr := replayTracker(t, router, ch, 5*time.Second)
		if !tr.Visible("tx-commit") {
			t.Fatalf("%s: committed tx not visible", ch)
		}
		if !bytes.Equal(tr.Payload("tx-commit"), []byte("both-or-neither")) {
			t.Fatalf("%s: committed payload %q", ch, tr.Payload("tx-commit"))
		}
		if !tr.Marked("tx-abandoned") {
			t.Fatalf("%s: abandoned mark never ordered", ch)
		}
		if tr.Visible("tx-abandoned") {
			t.Fatalf("%s: abandoned tx became visible", ch)
		}
		if !tr.Visible("tx-resume") {
			t.Fatalf("%s: resumed tx not visible", ch)
		}
	}
}

func TestBroadcastCrossValidation(t *testing.T) {
	r, _ := twoFakes(t, Map{Shards: []ShardID{0, 1}})
	if err := r.BroadcastCross(CrossTx{Channels: []string{"a"}}, CrossOptions{}); err == nil {
		t.Fatal("missing xid accepted")
	}
	if err := r.BroadcastCross(CrossTx{XID: "x"}, CrossOptions{}); err == nil {
		t.Fatal("missing channels accepted")
	}
	// Fake backends never order anything: phase 1 must abort at the
	// deadline, classified as a clean abort (no commit was ever sent).
	err := r.BroadcastCross(
		CrossTx{XID: "x", Channels: []string{"a"}},
		CrossOptions{Timeout: 200 * time.Millisecond, RetryEvery: 50 * time.Millisecond},
	)
	if !errors.Is(err, ErrCrossAborted) {
		t.Fatalf("phase-1 deadline: %v, want ErrCrossAborted", err)
	}
}
