package sharding

import "testing"

func TestMapRouteDeterministic(t *testing.T) {
	a := Map{Shards: []ShardID{0, 1, 2}}
	b := Map{Shards: []ShardID{2, 1, 0}} // same set, scrambled order
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	channels := []string{"payments", "audit", "telemetry", "ch-0", "ch-1", "ch-2", "ch-3"}
	spread := make(map[ShardID]bool)
	for _, ch := range channels {
		s1, ok := a.Route(ch)
		if !ok {
			t.Fatalf("channel %q not routed", ch)
		}
		s2, _ := a.Route(ch)
		if s1 != s2 {
			t.Fatalf("channel %q routed to %d then %d", ch, s1, s2)
		}
		if s3, _ := b.Route(ch); s3 != s1 {
			t.Fatalf("channel %q routed to %d by one map, %d by an equal map", ch, s1, s3)
		}
		if !a.HasShard(s1) {
			t.Fatalf("channel %q routed outside the shard set: %d", ch, s1)
		}
		spread[s1] = true
	}
	if len(spread) < 2 {
		t.Fatalf("hash default sent every sample channel to one shard: %v", spread)
	}
}

func TestMapExplicitAssignmentWins(t *testing.T) {
	m := Map{Shards: []ShardID{0, 1}, Channels: map[string]ShardID{"pinned": 1}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	s, ok := m.Route("pinned")
	if !ok || s != 1 {
		t.Fatalf("explicit assignment ignored: got shard %d ok=%v", s, ok)
	}
}

func TestMapStrictRejectsUnassigned(t *testing.T) {
	m := Map{Shards: []ShardID{0, 1}, Strict: true, Channels: map[string]ShardID{"known": 0}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if s, ok := m.Route("known"); !ok || s != 0 {
		t.Fatalf("assigned channel rejected: shard %d ok=%v", s, ok)
	}
	if _, ok := m.Route("ghost"); ok {
		t.Fatal("strict map routed an unassigned channel")
	}
}

func TestMapValidate(t *testing.T) {
	bad := []Map{
		{},                             // no shards
		{Shards: []ShardID{0, 0}},      // duplicate
		{Shards: []ShardID{-1}},        // negative
		{Shards: []ShardID{0}, Channels: map[string]ShardID{"c": 3}}, // unknown shard
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid map validated", i)
		}
	}
}

func TestParseMap(t *testing.T) {
	m, err := ParseMap([]byte(`{"shards":[1,0],"channels":{"payments":1},"strict":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 2 || m.Shards[0] != 0 || m.Shards[1] != 1 {
		t.Fatalf("shards not normalized: %v", m.Shards)
	}
	if s, ok := m.Route("payments"); !ok || s != 1 {
		t.Fatalf("payments routed to %d ok=%v", s, ok)
	}
	if _, err := ParseMap([]byte(`{"shards":[]}`)); err == nil {
		t.Fatal("empty shard set parsed")
	}
	if _, err := ParseMap([]byte(`not json`)); err == nil {
		t.Fatal("garbage parsed")
	}
}
