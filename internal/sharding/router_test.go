package sharding

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
)

// fakeBackend records what a shard received; Deliver hands back a closed
// stream so routing (not streaming) is what these tests exercise.
type fakeBackend struct {
	mu   sync.Mutex
	raws [][]byte
}

func (f *fakeBackend) BroadcastRaw(raw []byte) fabric.BroadcastStatus {
	f.mu.Lock()
	f.raws = append(f.raws, raw)
	f.mu.Unlock()
	return fabric.StatusSuccess
}

func (f *fakeBackend) Broadcast(env *fabric.Envelope) fabric.BroadcastStatus {
	return f.BroadcastRaw(env.Marshal())
}

func (f *fakeBackend) Deliver(string, fabric.SeekInfo) (*fabric.BlockStream, error) {
	s := fabric.NewBlockStream()
	s.Close(nil)
	return s, nil
}

func (f *fakeBackend) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.raws)
}

func twoFakes(t *testing.T, m Map) (*Router, map[ShardID]*fakeBackend) {
	t.Helper()
	fakes := map[ShardID]*fakeBackend{0: {}, 1: {}}
	r, err := NewRouter(m, map[ShardID]Backend{0: fakes[0], 1: fakes[1]})
	if err != nil {
		t.Fatal(err)
	}
	return r, fakes
}

func env(channel string, i int) *fabric.Envelope {
	return &fabric.Envelope{
		ChannelID: channel,
		ClientID:  "test",
		Payload:   []byte(fmt.Sprintf("env-%d", i)),
	}
}

func TestRouterUnknownChannelNotFound(t *testing.T) {
	r, fakes := twoFakes(t, Map{
		Shards:   []ShardID{0, 1},
		Channels: map[string]ShardID{"known": 1},
		Strict:   true,
	})
	if st := r.Broadcast(env("ghost", 0)); st != fabric.StatusNotFound {
		t.Fatalf("broadcast to unknown channel: status %v, want %v", st, fabric.StatusNotFound)
	}
	if _, err := r.Deliver("ghost", fabric.DeliverOldest()); err != fabric.ErrChannelNotFound {
		t.Fatalf("deliver on unknown channel: err %v, want ErrChannelNotFound", err)
	}
	if st := r.Broadcast(env("known", 0)); st != fabric.StatusSuccess {
		t.Fatalf("broadcast to assigned channel: status %v", st)
	}
	if fakes[0].count() != 0 || fakes[1].count() != 1 {
		t.Fatalf("assigned channel misrouted: shard0=%d shard1=%d", fakes[0].count(), fakes[1].count())
	}
	if st := r.Broadcast(&fabric.Envelope{ClientID: "no-channel"}); st != fabric.StatusBadRequest {
		t.Fatalf("broadcast without channel: status %v, want %v", st, fabric.StatusBadRequest)
	}
}

// TestRouterCreationRace hammers one brand-new channel from many
// goroutines at once: every envelope must land on exactly one shard (the
// channel-creation race of the issue).
func TestRouterCreationRace(t *testing.T) {
	r, fakes := twoFakes(t, Map{Shards: []ShardID{0, 1}})
	const writers = 32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if st := r.Broadcast(env("fresh-channel", i)); st != fabric.StatusSuccess {
				t.Errorf("writer %d: status %v", i, st)
			}
		}(i)
	}
	wg.Wait()
	got0, got1 := fakes[0].count(), fakes[1].count()
	if got0+got1 != writers {
		t.Fatalf("lost envelopes: shard0=%d shard1=%d", got0, got1)
	}
	if got0 != 0 && got1 != 0 {
		t.Fatalf("channel split across shards: shard0=%d shard1=%d", got0, got1)
	}
	// The winner must match the pin the race recorded.
	pinned, err := r.Route("fresh-channel")
	if err != nil {
		t.Fatal(err)
	}
	if fakes[pinned].count() != writers {
		t.Fatalf("pin %d disagrees with delivery: shard0=%d shard1=%d", pinned, got0, got1)
	}
}

// TestRouterReloadKeepsPins reloads the shard map under a live channel:
// the pinned channel must keep routing to its original shard (a reload
// must never silently migrate a live chain), while explicit assignments
// in the new map take precedence and new channels use the new shard set.
func TestRouterReloadKeepsPins(t *testing.T) {
	r, fakes := twoFakes(t, Map{Shards: []ShardID{0, 1}})
	pinned, err := r.Route("survivor")
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Broadcast(env("survivor", 0)); st != fabric.StatusSuccess {
		t.Fatalf("pre-reload broadcast: %v", st)
	}

	// Shrink the map to only the OTHER shard. The pin must still win for
	// the live channel; new channels must hash into the new set.
	other := ShardID(1) - pinned
	if err := r.Reload(Map{Shards: []ShardID{other}}); err != nil {
		t.Fatal(err)
	}
	if s, err := r.Route("survivor"); err != nil || s != pinned {
		t.Fatalf("reload migrated pinned channel: shard %d err %v, want %d", s, err, pinned)
	}
	if _, err := r.Deliver("survivor", fabric.DeliverOldest()); err != nil {
		t.Fatalf("deliver re-seek after reload: %v", err)
	}
	before := fakes[pinned].count()
	if st := r.Broadcast(env("survivor", 1)); st != fabric.StatusSuccess {
		t.Fatalf("post-reload broadcast: %v", st)
	}
	if fakes[pinned].count() != before+1 {
		t.Fatal("post-reload broadcast left the pinned shard")
	}
	if s, err := r.Route("brand-new"); err != nil || s != other {
		t.Fatalf("new channel after reload: shard %d err %v, want %d", s, err, other)
	}

	// An explicit assignment in a reloaded map overrides even a pin.
	if err := r.Reload(Map{
		Shards:   []ShardID{0, 1},
		Channels: map[string]ShardID{"survivor": other},
	}); err != nil {
		t.Fatal(err)
	}
	if s, err := r.Route("survivor"); err != nil || s != other {
		t.Fatalf("explicit assignment lost to pin: shard %d err %v, want %d", s, err, other)
	}

	// A reload targeting a shard with no backend is rejected.
	if err := r.Reload(Map{Shards: []ShardID{7}}); err == nil {
		t.Fatal("reload admitted a shard with no backend")
	}
}

// TestShardedServiceIsolation runs the real thing: two consensus groups
// on one network, channels explicitly split across them, and verifies the
// chains land on their own shard's ledgers only.
func TestShardedServiceIsolation(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		Map: Map{
			Shards:   []ShardID{0, 1},
			Channels: map[string]ShardID{"alpha": 0, "beta": 1},
		},
		BlockSize:      1,
		DisableSigning: true,
		DataDir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	router, closeFE, err := svc.NewRouter("iso", false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFE()

	const perChannel = 3
	streams := map[string]*fabric.BlockStream{}
	for _, ch := range []string{"alpha", "beta"} {
		s, err := router.Deliver(ch, fabric.DeliverOldest().Through(perChannel-1))
		if err != nil {
			t.Fatalf("deliver %s: %v", ch, err)
		}
		streams[ch] = s
	}
	for i := 0; i < perChannel; i++ {
		for _, ch := range []string{"alpha", "beta"} {
			if st := router.Broadcast(env(ch, i)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %s #%d: %v", ch, i, st)
			}
		}
	}
	for _, ch := range []string{"alpha", "beta"} {
		got := 0
		timeout := time.After(20 * time.Second)
		for got < perChannel {
			select {
			case b, ok := <-streams[ch].Blocks():
				if !ok {
					t.Fatalf("%s stream ended early (%d blocks): %v", ch, got, streams[ch].Err())
				}
				got += len(b.Envelopes)
			case <-timeout:
				t.Fatalf("%s: %d/%d envelopes delivered", ch, got, perChannel)
			}
		}
	}

	// Shard isolation: each group's nodes carry only their own channel.
	for shard, own := range map[ShardID]string{0: "alpha", 1: "beta"} {
		other := map[string]string{"alpha": "beta", "beta": "alpha"}[own]
		node := svc.Cluster(shard).Nodes[0]
		if led := node.Ledger(own); led == nil || led.Height() == 0 {
			t.Fatalf("shard %d has no %s chain", shard, own)
		}
		if led := node.Ledger(other); led != nil && led.Height() > 0 {
			t.Fatalf("shard %d leaked channel %s", shard, other)
		}
	}
	counts := router.RoutedByShard()
	if counts[0] != perChannel || counts[1] != perChannel {
		t.Fatalf("routed counters: %v", counts)
	}

	// Per-shard storage layout: shard 0 keeps the historical flat
	// node-<i> dirs, shard 1 nests under shard-1/.
	for _, probe := range []struct {
		shard ShardID
		want  string
	}{{0, "node-0"}, {1, filepath.Join("shard-1", "node-0")}} {
		dir := svc.Cluster(probe.shard).NodeDataDir(0)
		if !strings.HasSuffix(dir, probe.want) {
			t.Fatalf("shard %d data dir %q, want suffix %q", probe.shard, dir, probe.want)
		}
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("shard %d data dir: %v", probe.shard, err)
		}
	}
}
