package sharding

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fabric"
	"repro/internal/obs"
)

// Backend is one shard's ordering surface: the full fabric.Orderer plus
// the raw broadcast hot path. core.Frontend implements it in process;
// any wire client exposing the same calls works across processes.
type Backend interface {
	fabric.Orderer
	BroadcastRaw(raw []byte) fabric.BroadcastStatus
}

// Router routes the AtomicBroadcast surface by channel → shard. It
// implements fabric.Orderer, so everything that serves an orderer — the
// clientapi wire server, the chaos harness, the benches — can sit on top
// of a sharded deployment unchanged.
//
// Routing precedence per channel:
//
//  1. the map's explicit assignment,
//  2. the runtime pin recorded on the channel's first hash-routed use,
//  3. the map's deterministic hash default (then pinned).
//
// Pins make hash routing stable across Reload: swapping in a map with a
// different shard set changes where NEW channels hash, but a chain that
// already lives somewhere keeps routing there — a map reload must never
// silently migrate a live chain (its history does not follow). Explicit
// assignments are the operator's override and always win, including over
// a pin.
type Router struct {
	mu       sync.RWMutex
	m        Map
	backends map[ShardID]Backend
	pins     map[string]ShardID

	routed map[ShardID]*atomic.Uint64 // broadcasts routed per shard

	cross *obs.CrossShardMetrics // never nil: normalized at construction
}

// NewRouter builds a router over one backend per shard. Every shard in
// the map must have a backend; extra backends (shards a future Reload
// may re-admit) are allowed.
func NewRouter(m Map, backends map[ShardID]Backend) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for _, s := range m.Shards {
		if backends[s] == nil {
			return nil, fmt.Errorf("sharding: shard %d has no backend", s)
		}
	}
	r := &Router{
		m:        m,
		backends: make(map[ShardID]Backend, len(backends)),
		pins:     make(map[string]ShardID),
		routed:   make(map[ShardID]*atomic.Uint64, len(backends)),
		cross:    (*obs.CrossShardMetrics)(nil).OrNop(),
	}
	for s, b := range backends {
		r.backends[s] = b
		r.routed[s] = new(atomic.Uint64)
	}
	return r, nil
}

// InstrumentCross attaches cross-shard outcome counters (mark/commit/
// abort) to the router's two-phase coordinator. Nil detaches.
func (r *Router) InstrumentCross(m *obs.CrossShardMetrics) {
	r.cross = m.OrNop()
}

// Map returns the current shard map.
func (r *Router) Map() Map {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m
}

// Reload swaps the shard map (config reload: new channel assignments, a
// grown or shrunk shard set). Every shard of the new map must have a
// backend. Existing pins survive — already-routed channels stay put —
// while explicit assignments of the new map take precedence as always.
func (r *Router) Reload(m Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range m.Shards {
		if r.backends[s] == nil {
			return fmt.Errorf("sharding: shard %d has no backend", s)
		}
	}
	r.m = m
	return nil
}

// Route resolves a channel to its shard, recording a first-use pin for
// hash-routed channels. The error is fabric.ErrChannelNotFound for
// unassigned channels of a strict map (and for pins whose shard lost its
// backend).
func (r *Router) Route(channel string) (ShardID, error) {
	r.mu.RLock()
	if s, ok := r.m.Channels[channel]; ok {
		r.mu.RUnlock()
		return s, nil
	}
	if s, ok := r.pins[channel]; ok {
		r.mu.RUnlock()
		return s, nil
	}
	m := r.m
	r.mu.RUnlock()

	s, ok := m.Route(channel)
	if !ok {
		return 0, fabric.ErrChannelNotFound
	}
	r.mu.Lock()
	// Explicit assignments and concurrent pinners may have raced the
	// unlocked window; the map hash is deterministic, so racing pinners
	// agree anyway — re-check only to keep precedence exact.
	if win, ok := r.m.Channels[channel]; ok {
		s = win
	} else if pinned, ok := r.pins[channel]; ok {
		s = pinned
	} else {
		r.pins[channel] = s
	}
	r.mu.Unlock()
	return s, nil
}

// backend resolves the channel's shard to its backend.
func (r *Router) backend(channel string) (Backend, ShardID, error) {
	s, err := r.Route(channel)
	if err != nil {
		return nil, 0, err
	}
	r.mu.RLock()
	b := r.backends[s]
	r.mu.RUnlock()
	if b == nil {
		return nil, 0, fabric.ErrChannelNotFound
	}
	return b, s, nil
}

// Broadcast routes one envelope to its channel's shard.
func (r *Router) Broadcast(env *fabric.Envelope) fabric.BroadcastStatus {
	if env == nil || env.ChannelID == "" {
		return fabric.StatusBadRequest
	}
	return r.BroadcastRaw(env.Marshal())
}

// BroadcastRaw routes an already-marshalled envelope (the hot path).
func (r *Router) BroadcastRaw(raw []byte) fabric.BroadcastStatus {
	channel, err := fabric.ChannelOf(raw)
	if err != nil {
		return fabric.StatusBadRequest
	}
	b, s, err := r.backend(channel)
	if err != nil {
		return fabric.StatusOf(err)
	}
	if c := r.routed[s]; c != nil {
		c.Add(1)
	}
	return b.BroadcastRaw(raw)
}

// Deliver opens a block stream on the channel's shard. A Deliver after a
// map reload re-resolves the channel — pinned channels re-seek into the
// same chain, new channels into their new shard.
func (r *Router) Deliver(channel string, seek fabric.SeekInfo) (*fabric.BlockStream, error) {
	b, _, err := r.backend(channel)
	if err != nil {
		return nil, err
	}
	return b.Deliver(channel, seek)
}

// RoutedByShard snapshots how many broadcasts each shard received (bench
// and test observability).
func (r *Router) RoutedByShard() map[ShardID]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[ShardID]uint64, len(r.routed))
	for s, c := range r.routed {
		out[s] = c.Load()
	}
	return out
}

var _ fabric.Orderer = (*Router)(nil)
var _ Backend = (*Router)(nil)
