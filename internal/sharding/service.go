package sharding

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// ServiceConfig shapes an in-process sharded ordering service: one
// core.Cluster per shard of the map, all on one shared network, each an
// independent consensus group with its own unified WAL, checkpointer,
// and retention domain (DataDir/shard-<k>/node-<i>).
type ServiceConfig struct {
	// Map is the shard registry; one cluster is built per listed shard.
	Map Map
	// NodesPerShard is each group's replica count (default 4).
	NodesPerShard int
	// F is each group's fault threshold (zero derives the maximum).
	F int

	// Per-node knobs, applied to every shard (see core.ClusterConfig).
	BlockSize          int
	BlockTimeout       time.Duration
	BatchSize          int
	CheckpointInterval int64
	RequestTimeout     time.Duration
	SigningWorkers     int
	DisableSigning     bool
	DataDir            string
	WALSegmentBytes    int64
	RetainBlocks       uint64
	RetainBytes        int64
	RetainWeights      map[string]float64
	CommitMaxDelay     time.Duration
	CommitMaxBatch     int

	// Network hosts every group; nil creates one (owned by the service).
	Network *transport.InProcNetwork

	// Metrics, when set, instruments every shard's cluster (and the
	// routers built with NewRouter) into one shared registry with
	// shard/node labels. Nil disables.
	Metrics *obs.Registry
}

// Service is a running in-process sharded ordering service: the per-shard
// clusters plus the shared network. Frontends and routers are built on
// top with NewRouter.
type Service struct {
	// Network is the transport all groups share.
	Network *transport.InProcNetwork
	// Clusters are the consensus groups, keyed by shard.
	Clusters map[ShardID]*core.Cluster

	cfg     ServiceConfig
	ownsNet bool
}

// NewService builds and starts one consensus group per shard of the map.
func NewService(cfg ServiceConfig) (*Service, error) {
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if cfg.NodesPerShard == 0 {
		cfg.NodesPerShard = 4
	}
	network := cfg.Network
	ownsNet := false
	if network == nil {
		network = transport.NewInProcNetwork(transport.InProcConfig{})
		ownsNet = true
	}
	s := &Service{
		Network:  network,
		Clusters: make(map[ShardID]*core.Cluster, len(cfg.Map.Shards)),
		cfg:      cfg,
		ownsNet:  ownsNet,
	}
	for _, shard := range cfg.Map.Shards {
		cluster, err := core.NewCluster(core.ClusterConfig{
			Nodes:              cfg.NodesPerShard,
			ShardID:            int(shard),
			F:                  cfg.F,
			BlockSize:          cfg.BlockSize,
			BlockTimeout:       cfg.BlockTimeout,
			BatchSize:          cfg.BatchSize,
			CheckpointInterval: cfg.CheckpointInterval,
			RequestTimeout:     cfg.RequestTimeout,
			SigningWorkers:     cfg.SigningWorkers,
			DisableSigning:     cfg.DisableSigning,
			Network:            network,
			DataDir:            cfg.DataDir,
			WALSegmentBytes:    cfg.WALSegmentBytes,
			RetainBlocks:       cfg.RetainBlocks,
			RetainBytes:        cfg.RetainBytes,
			RetainWeights:      cfg.RetainWeights,
			CommitMaxDelay:     cfg.CommitMaxDelay,
			CommitMaxBatch:     cfg.CommitMaxBatch,
			Metrics:            cfg.Metrics,
		})
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("sharding: shard %d: %w", shard, err)
		}
		s.Clusters[shard] = cluster
	}
	return s, nil
}

// Shards returns the shard set, sorted.
func (s *Service) Shards() []ShardID {
	out := make([]ShardID, 0, len(s.Clusters))
	for shard := range s.Clusters {
		out = append(out, shard)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Cluster returns one shard's consensus group (nil for unknown shards).
func (s *Service) Cluster(shard ShardID) *core.Cluster { return s.Clusters[shard] }

// NewRouter attaches one frontend per shard (ids idPrefix-shard-<k>) and
// builds a Router over them. verify selects the f+1 verified-signature
// release rule on every frontend. close releases the frontends (call it
// before Service.Stop).
func (s *Service) NewRouter(idPrefix string, verify bool) (router *Router, close func(), err error) {
	frontends := make(map[ShardID]*core.Frontend, len(s.Clusters))
	backends := make(map[ShardID]Backend, len(s.Clusters))
	closeAll := func() {
		for _, fe := range frontends {
			fe.Close()
		}
	}
	for _, shard := range s.Shards() {
		fe, err := s.Clusters[shard].NewFrontend(fmt.Sprintf("%s-shard-%d", idPrefix, shard), verify)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("sharding: shard %d frontend: %w", shard, err)
		}
		frontends[shard] = fe
		backends[shard] = fe
	}
	router, err = NewRouter(s.cfg.Map, backends)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	if s.cfg.Metrics != nil {
		router.InstrumentCross(obs.NewCrossShardMetrics(s.cfg.Metrics, "router", idPrefix))
		rt := router
		for _, shard := range s.Shards() {
			shard := shard
			s.cfg.Metrics.GaugeFunc(
				obs.Name("repro_router_broadcasts_routed", "router", idPrefix, "shard", fmt.Sprint(shard)),
				"Broadcasts this router sent to the shard.",
				func() float64 { return float64(rt.RoutedByShard()[shard]) })
		}
	}
	return router, closeAll, nil
}

// Stop shuts every group down and closes the network when the service
// created it.
func (s *Service) Stop() {
	for _, cluster := range s.Clusters {
		if cluster != nil {
			cluster.Stop()
		}
	}
	if s.ownsNet && s.Network != nil {
		s.Network.Close()
	}
}
