package sharding

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/wire"
)

// Cross-shard atomic visibility. Shards are independent consensus groups,
// so no single decision can place an envelope in two chains at once.
// Instead the routing layer runs a two-phase mark/commit protocol made of
// ordinary envelopes — the ordering nodes stay completely unaware:
//
//  1. MARK(xid, channels, payload) is ordered in EVERY involved channel
//     (each on its own shard). A mark alone is a staged, invisible
//     record.
//  2. Only after the coordinator has OBSERVED every mark ordered does it
//     broadcast COMMIT(xid) into every channel, retrying until each
//     chain has one.
//
// Readers apply the visibility rule (VisibilityTracker): the cross-shard
// envelope is visible in a chain iff that chain contains MARK(xid) and a
// later COMMIT(xid). Atomicity follows from the commit gate: commits are
// only ever sent once every chain holds its mark, so either every chain
// can become visible (commit retries survive partitions: a healed shard
// orders the retried commit) or none ever does (a coordinator that dies
// before phase 2 leaves only invisible marks). The chaos harness's
// cross-shard-atomic invariant checks exactly this "both chains or
// neither" property while a shard is partitioned.

// Payload magics distinguishing cross-shard records from application
// payloads (first four bytes of the envelope payload).
var (
	markMagic   = []byte("XSM1")
	commitMagic = []byte("XSC1")
)

// EncodeMark builds the MARK payload: the transaction id, the full
// channel set (so any reader can learn the other chains involved), and
// the application payload it stages.
func EncodeMark(xid string, channels []string, payload []byte) []byte {
	w := wire.NewWriter(16 + len(xid) + len(payload) + 8*len(channels))
	w.PutRaw(markMagic)
	w.PutString(xid)
	w.PutUvarint(uint64(len(channels)))
	for _, ch := range channels {
		w.PutString(ch)
	}
	w.PutBytes(payload)
	return w.Bytes()
}

// DecodeMark decodes a MARK payload; ok is false for non-mark payloads.
func DecodeMark(payload []byte) (xid string, channels []string, inner []byte, ok bool) {
	if !bytes.HasPrefix(payload, markMagic) {
		return "", nil, nil, false
	}
	r := wire.NewReader(payload[len(markMagic):])
	xid = r.String()
	n := r.Uvarint()
	if r.Err() != nil || n > 1<<16 {
		return "", nil, nil, false
	}
	channels = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		channels = append(channels, r.String())
	}
	inner = r.BytesCopy()
	if r.Finish() != nil {
		return "", nil, nil, false
	}
	return xid, channels, inner, true
}

// EncodeCommit builds the COMMIT payload for a transaction id.
func EncodeCommit(xid string) []byte {
	w := wire.NewWriter(8 + len(xid))
	w.PutRaw(commitMagic)
	w.PutString(xid)
	return w.Bytes()
}

// DecodeCommit decodes a COMMIT payload; ok is false for non-commit
// payloads.
func DecodeCommit(payload []byte) (xid string, ok bool) {
	if !bytes.HasPrefix(payload, commitMagic) {
		return "", false
	}
	r := wire.NewReader(payload[len(commitMagic):])
	xid = r.String()
	if r.Finish() != nil {
		return "", false
	}
	return xid, true
}

// VisibilityTracker applies the reader-side visibility rule to ONE
// channel's chain, fed in order: a cross-shard transaction is visible
// here iff a MARK(xid) was observed and a COMMIT(xid) after it. Safe for
// concurrent Observe/query (the chaos invariants poll it while a stream
// consumer feeds it).
type VisibilityTracker struct {
	mu      sync.Mutex
	marked  map[string]bool
	visible map[string]bool
	inner   map[string][]byte
}

// NewVisibilityTracker builds an empty tracker.
func NewVisibilityTracker() *VisibilityTracker {
	return &VisibilityTracker{
		marked:  make(map[string]bool),
		visible: make(map[string]bool),
		inner:   make(map[string][]byte),
	}
}

// ObserveBlock feeds every envelope of a delivered block, in order.
func (t *VisibilityTracker) ObserveBlock(b *fabric.Block) {
	for _, raw := range b.Envelopes {
		t.ObserveRaw(raw)
	}
}

// ObserveRaw feeds one ordered envelope. Non-cross-shard envelopes are
// ignored.
func (t *VisibilityTracker) ObserveRaw(raw []byte) {
	env, err := fabric.UnmarshalEnvelope(raw)
	if err != nil {
		return
	}
	if xid, _, inner, ok := DecodeMark(env.Payload); ok {
		t.mu.Lock()
		if !t.marked[xid] {
			t.marked[xid] = true
			t.inner[xid] = inner
		}
		t.mu.Unlock()
		return
	}
	if xid, ok := DecodeCommit(env.Payload); ok {
		t.mu.Lock()
		if t.marked[xid] {
			t.visible[xid] = true // commit after mark: visible
		}
		t.mu.Unlock()
	}
}

// Marked reports whether the chain holds the transaction's MARK.
func (t *VisibilityTracker) Marked(xid string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.marked[xid]
}

// Visible reports whether the transaction is visible in this chain
// (MARK followed by COMMIT).
func (t *VisibilityTracker) Visible(xid string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.visible[xid]
}

// Payload returns the staged application payload of a marked
// transaction (nil when unmarked).
func (t *VisibilityTracker) Payload(xid string) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inner[xid]
}

// CrossTx is one cross-shard atomic broadcast: a payload that must become
// visible in every listed channel — chains on any mix of shards — or in
// none.
type CrossTx struct {
	// XID is the globally unique transaction id (the mark/commit join
	// key). Required.
	XID string
	// ClientID stamps the mark/commit envelopes.
	ClientID string
	// Channels are the involved chains (at least one; cross-shard when
	// they route to different shards, but same-shard pairs work
	// identically).
	Channels []string
	// Payload is the application record staged by the marks.
	Payload []byte
}

// CrossOptions tunes the coordinator.
type CrossOptions struct {
	// Timeout bounds the whole run (default 10s). On expiry during phase
	// 1 the transaction is left aborted (marks only — invisible
	// everywhere). On expiry during phase 2 ErrCrossIndeterminate is
	// returned: commits are in flight and a later reader may legally see
	// the transaction; re-driving the commit (ResumeCommit) is the
	// recovery path.
	Timeout time.Duration
	// RetryEvery is the mark/commit rebroadcast cadence while waiting
	// for the chains to show them (default 250ms). Rebroadcasts are
	// idempotent under the visibility rule.
	RetryEvery time.Duration
}

func (o CrossOptions) withDefaults() CrossOptions {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.RetryEvery <= 0 {
		o.RetryEvery = 250 * time.Millisecond
	}
	return o
}

// ErrCrossAborted reports a cross-shard broadcast that never reached the
// commit phase: no chain will ever show the transaction.
var ErrCrossAborted = errors.New("sharding: cross-shard tx aborted before commit")

// ErrCrossIndeterminate reports a commit phase that timed out before
// every chain showed the commit: the transaction WILL become visible on
// chains that order a commit; drive ResumeCommit until it succeeds to
// restore the both-or-neither guarantee.
var ErrCrossIndeterminate = errors.New("sharding: cross-shard commit in flight but unconfirmed")

// BroadcastCross runs the two-phase mark/commit protocol for one
// transaction through this router, blocking until the transaction is
// visible in every involved chain (nil), provably aborted
// (ErrCrossAborted), or indeterminate at the deadline
// (ErrCrossIndeterminate).
func (r *Router) BroadcastCross(tx CrossTx, opts CrossOptions) error {
	if tx.XID == "" || len(tx.Channels) == 0 {
		return fmt.Errorf("sharding: cross tx needs an id and channels")
	}
	opts = opts.withDefaults()
	deadline := time.NewTimer(opts.Timeout)
	defer deadline.Stop()

	// Watch every involved chain BEFORE broadcasting anything: marks can
	// only order after the trackers are live, so nothing is missed.
	trackers := make([]*VisibilityTracker, len(tx.Channels))
	streams := make([]*fabric.BlockStream, len(tx.Channels))
	defer func() {
		for _, s := range streams {
			if s != nil {
				s.Cancel()
			}
		}
	}()
	for i, channel := range tx.Channels {
		stream, err := r.Deliver(channel, fabric.DeliverNewest())
		if err != nil {
			r.cross.Aborted.Inc()
			return fmt.Errorf("%w: watch %q: %v", ErrCrossAborted, channel, err)
		}
		streams[i] = stream
		trackers[i] = NewVisibilityTracker()
		go func(t *VisibilityTracker, s *fabric.BlockStream) {
			for b := range s.Blocks() {
				t.ObserveBlock(b)
			}
		}(trackers[i], stream)
	}

	// Phase 1: order a mark in every chain; rebroadcast until observed.
	marks := make([][]byte, len(tx.Channels))
	for i, channel := range tx.Channels {
		marks[i] = (&fabric.Envelope{
			ChannelID: channel,
			ClientID:  tx.ClientID,
			Payload:   EncodeMark(tx.XID, tx.Channels, tx.Payload),
		}).Marshal()
	}
	if err := r.driveAll(tx.XID, marks, trackers, (*VisibilityTracker).Marked, opts, deadline.C); err != nil {
		r.cross.MarkFailed.Inc()
		r.cross.Aborted.Inc()
		return fmt.Errorf("%w: %v", ErrCrossAborted, err)
	}
	r.cross.Marked.Inc()

	// Phase 2: every chain holds its mark — commit everywhere.
	commits := make([][]byte, len(tx.Channels))
	for i, channel := range tx.Channels {
		commits[i] = (&fabric.Envelope{
			ChannelID: channel,
			ClientID:  tx.ClientID,
			Payload:   EncodeCommit(tx.XID),
		}).Marshal()
	}
	if err := r.driveAll(tx.XID, commits, trackers, (*VisibilityTracker).Visible, opts, deadline.C); err != nil {
		return fmt.Errorf("%w: %v", ErrCrossIndeterminate, err)
	}
	r.cross.Committed.Inc()
	return nil
}

// ResumeCommit re-drives the commit phase of a transaction whose
// BroadcastCross returned ErrCrossIndeterminate (every mark is known
// ordered; only commits may be missing). Safe to call repeatedly.
func (r *Router) ResumeCommit(tx CrossTx, opts CrossOptions) error {
	if tx.XID == "" || len(tx.Channels) == 0 {
		return fmt.Errorf("sharding: cross tx needs an id and channels")
	}
	opts = opts.withDefaults()
	deadline := time.NewTimer(opts.Timeout)
	defer deadline.Stop()

	trackers := make([]*VisibilityTracker, len(tx.Channels))
	streams := make([]*fabric.BlockStream, len(tx.Channels))
	defer func() {
		for _, s := range streams {
			if s != nil {
				s.Cancel()
			}
		}
	}()
	commits := make([][]byte, len(tx.Channels))
	for i, channel := range tx.Channels {
		// Replay from genesis so an already-visible chain answers
		// immediately instead of waiting for a fresh commit to order.
		stream, err := r.Deliver(channel, fabric.DeliverOldest())
		if err != nil {
			return fmt.Errorf("%w: watch %q: %v", ErrCrossIndeterminate, channel, err)
		}
		streams[i] = stream
		trackers[i] = NewVisibilityTracker()
		go func(t *VisibilityTracker, s *fabric.BlockStream) {
			for b := range s.Blocks() {
				t.ObserveBlock(b)
			}
		}(trackers[i], stream)
		commits[i] = (&fabric.Envelope{
			ChannelID: channel,
			ClientID:  tx.ClientID,
			Payload:   EncodeCommit(tx.XID),
		}).Marshal()
	}
	if err := r.driveAll(tx.XID, commits, trackers, (*VisibilityTracker).Visible, opts, deadline.C); err != nil {
		return fmt.Errorf("%w: %v", ErrCrossIndeterminate, err)
	}
	r.cross.Committed.Inc()
	return nil
}

// driveAll broadcasts one raw envelope per chain and rebroadcasts on the
// retry cadence until pred holds on every tracker or the deadline fires.
// Broadcast failures are tolerated (a partitioned shard answers
// unavailable; the retry reaches it after the heal) — only the deadline
// aborts.
func (r *Router) driveAll(xid string, raws [][]byte, trackers []*VisibilityTracker,
	pred func(*VisibilityTracker, string) bool, opts CrossOptions, deadline <-chan time.Time) error {
	tick := time.NewTicker(opts.RetryEvery)
	defer tick.Stop()
	for {
		done := true
		for i, t := range trackers {
			if pred(t, xid) {
				continue
			}
			done = false
			r.BroadcastRaw(raws[i]) // best effort; retried next tick
		}
		if done {
			return nil
		}
		select {
		case <-deadline:
			lagging := 0
			for _, t := range trackers {
				if !pred(t, xid) {
					lagging++
				}
			}
			return fmt.Errorf("deadline: %d of %d chains still waiting", lagging, len(trackers))
		case <-tick.C:
		}
	}
}
