// Package sharding partitions channels across independent consensus
// groups (shards) behind a thin routing layer, so aggregate multi-channel
// throughput scales with shard count instead of being capped by one
// group's ordering rate (ROADMAP scale-out; the L1/L2 split Barger et al.
// motivate for Fabric-scale multi-channel deployments).
//
// The pieces:
//
//   - Map: the shard registry + membership map — which shards exist and
//     which channels are explicitly assigned where. Unassigned channels
//     hash deterministically into the shard set (or are rejected when the
//     map is strict).
//   - Router: a fabric.Orderer that routes Broadcast/Deliver by channel →
//     shard to per-shard backends (core.Frontend in process,
//     clientapi.Client across the wire), pinning hash-routed channels on
//     first use so a map reload never silently migrates a live chain.
//   - Cross-shard mark/commit (cross.go): a two-phase record ordered in
//     every involved channel, giving an envelope atomic visibility across
//     chains on different shards without any consensus-layer change.
//   - Service (service.go): the in-process multi-shard world — one
//     core.Cluster per shard on a shared network, each an independent
//     WAL, checkpoint, and retention domain.
//
// Each shard is an ordinary core.Cluster made group-aware by
// ClusterConfig.ShardID: shard k's replicas take IDs k*core.ShardStride+i,
// so any number of groups coexist on one transport with distinct
// addresses and key registrations.
package sharding

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
)

// ShardID names one consensus group. Shard 0 is the historical
// single-group deployment.
type ShardID int

// Map is the shard registry and channel membership map: the shard set,
// the explicit channel assignments, and the default rule for everything
// else. The zero Map is invalid; build one with at least one shard.
type Map struct {
	// Shards is the shard set, each backed by an independent consensus
	// group. Order is irrelevant (Validate sorts); duplicates are
	// rejected.
	Shards []ShardID `json:"shards"`
	// Channels explicitly assigns channels to shards. Explicit
	// assignments always win over the hash default and over runtime
	// pins.
	Channels map[string]ShardID `json:"channels,omitempty"`
	// Strict disables the hash default: a channel with no explicit
	// assignment is not served (Broadcast answers NOT_FOUND). Operators
	// that provision channels deliberately run strict maps.
	Strict bool `json:"strict,omitempty"`
}

// Validate checks the map is usable: at least one shard, no duplicate
// shards, and every explicit assignment pointing into the shard set. It
// normalizes the shard order so routing is deterministic across
// processes.
func (m *Map) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("sharding: map has no shards")
	}
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i] < m.Shards[j] })
	for i, s := range m.Shards {
		if s < 0 {
			return fmt.Errorf("sharding: negative shard id %d", s)
		}
		if i > 0 && m.Shards[i-1] == s {
			return fmt.Errorf("sharding: duplicate shard id %d", s)
		}
	}
	for channel, s := range m.Channels {
		if !m.HasShard(s) {
			return fmt.Errorf("sharding: channel %q assigned to unknown shard %d", channel, s)
		}
	}
	return nil
}

// HasShard reports whether s is in the shard set.
func (m *Map) HasShard(s ShardID) bool {
	for _, have := range m.Shards {
		if have == s {
			return true
		}
	}
	return false
}

// Route resolves a channel under this map alone (no runtime pins):
// explicit assignment first, then the deterministic hash default over the
// shard set. ok is false for unassigned channels of a strict map. The
// hash (FNV-1a over the channel name) is stable across processes and
// restarts, so every router holding the same map routes the same way —
// which is what makes concurrent first-use of a new channel land on
// exactly one shard.
func (m *Map) Route(channel string) (ShardID, bool) {
	if s, ok := m.Channels[channel]; ok {
		return s, true
	}
	if m.Strict || len(m.Shards) == 0 {
		return 0, false
	}
	h := fnv.New64a()
	h.Write([]byte(channel))
	return m.Shards[h.Sum64()%uint64(len(m.Shards))], true
}

// ParseMap decodes and validates a JSON shard map:
//
//	{"shards":[0,1],"channels":{"payments":1},"strict":false}
func ParseMap(raw []byte) (Map, error) {
	var m Map
	if err := json.Unmarshal(raw, &m); err != nil {
		return Map{}, fmt.Errorf("sharding: parse map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Map{}, err
	}
	return m, nil
}

// LoadMapFile reads and validates a JSON shard map from disk (the
// -shard-map flag of cmd/ordernode and cmd/frontend).
func LoadMapFile(path string) (Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Map{}, fmt.Errorf("sharding: %w", err)
	}
	return ParseMap(raw)
}
