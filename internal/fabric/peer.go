package fabric

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
)

// TxValidationCode classifies a transaction during block validation
// (protocol step 5). Invalid transactions remain in the block — "invalid
// transactions are also added to the ledger, but they are not executed at
// the peers" (protocol step 6) — which also exposes malicious clients.
type TxValidationCode int

// Validation outcomes.
const (
	TxValid TxValidationCode = iota + 1
	TxBadEnvelope
	TxBadPayload
	TxEndorsementPolicyFailure
	TxMVCCConflict
)

// String renders the code.
func (c TxValidationCode) String() string {
	switch c {
	case TxValid:
		return "VALID"
	case TxBadEnvelope:
		return "BAD_ENVELOPE"
	case TxBadPayload:
		return "BAD_PAYLOAD"
	case TxEndorsementPolicyFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case TxMVCCConflict:
		return "MVCC_READ_CONFLICT"
	default:
		return "UNKNOWN"
	}
}

// CommitEvent notifies a subscriber that a transaction was immutably
// recorded (protocol step 6: the client learns both that the transaction is
// in the chain and whether it was valid).
type CommitEvent struct {
	BlockNum uint64
	TxID     string
	Code     TxValidationCode
}

// CommitResult summarizes one committed block.
type CommitResult struct {
	BlockNum uint64
	Codes    []TxValidationCode
	Valid    int
	Invalid  int
}

// PeerConfig parameterizes a committing peer.
type PeerConfig struct {
	// ID is the peer identity.
	ID string
	// Registry resolves endorser public keys; nil skips signature checks
	// (benchmark mode with opaque payloads).
	Registry *cryptoutil.Registry
	// Policies maps chaincode id to its endorsement policy. Chaincodes
	// without an entry fail validation.
	Policies map[string]Policy
	// VerifyClientSigs additionally verifies envelope signatures against
	// the registry.
	VerifyClientSigs bool
}

// Peer is a committing peer: it validates ordered blocks (endorsement
// policy + MVCC read-set checks), appends them to its ledger, applies valid
// write sets to its state, and emits commit events. Validation is
// deterministic — every peer processing the same chain reaches the same
// state (Section 3: "the validation code needs to be deterministic").
type Peer struct {
	cfg    PeerConfig
	ledger *Ledger
	db     *StateDB

	mu   sync.Mutex
	subs []chan CommitEvent
}

// NewPeer creates a committing peer with an empty ledger and state.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.ID == "" {
		return nil, errors.New("peer: empty id")
	}
	return &Peer{
		cfg:    cfg,
		ledger: NewLedger(),
		db:     NewStateDB(),
	}, nil
}

// Ledger exposes the peer's chain.
func (p *Peer) Ledger() *Ledger { return p.ledger }

// StateDB exposes the peer's world state.
func (p *Peer) StateDB() *StateDB { return p.db }

// Subscribe returns a channel of commit events. The channel is buffered;
// if the subscriber stops draining it, events are dropped rather than
// blocking the commit path.
func (p *Peer) Subscribe() <-chan CommitEvent {
	ch := make(chan CommitEvent, 1024)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.subs = append(p.subs, ch)
	return ch
}

func (p *Peer) notify(ev CommitEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ch := range p.subs {
		select {
		case ch <- ev:
		default: // subscriber too slow: drop rather than stall commits
		}
	}
}

// CommitBlock validates every transaction in the block, appends the block
// to the ledger, applies the write sets of valid transactions, and emits
// events. The block must extend the peer's current chain.
func (p *Peer) CommitBlock(b *Block) (*CommitResult, error) {
	if err := p.ledger.Append(b); err != nil {
		return nil, fmt.Errorf("peer %s: %w", p.cfg.ID, err)
	}
	result := &CommitResult{
		BlockNum: b.Header.Number,
		Codes:    make([]TxValidationCode, len(b.Envelopes)),
	}
	// MVCC overlay: writes of earlier valid transactions in this block are
	// visible to the conflict checks of later ones.
	overlay := make(map[string]bool)

	for i, raw := range b.Envelopes {
		code, tx := p.validateEnvelope(raw, overlay)
		result.Codes[i] = code
		txID := ""
		if tx != nil {
			txID = tx.TxID
		}
		if code == TxValid {
			result.Valid++
			version := Version{BlockNum: b.Header.Number, TxNum: uint32(i)}
			p.db.ApplyWrites(tx.RWSet.Writes, version)
			for _, w := range tx.RWSet.Writes {
				overlay[w.Key] = true
			}
		} else {
			result.Invalid++
		}
		p.notify(CommitEvent{BlockNum: b.Header.Number, TxID: txID, Code: code})
	}
	return result, nil
}

// validateEnvelope runs steps 5's two checks: endorsement policy
// fulfilment and read-set version freshness.
func (p *Peer) validateEnvelope(raw []byte, overlay map[string]bool) (TxValidationCode, *Transaction) {
	env, err := UnmarshalEnvelope(raw)
	if err != nil {
		return TxBadEnvelope, nil
	}
	if p.cfg.VerifyClientSigs && p.cfg.Registry != nil {
		if !p.cfg.Registry.Verify(env.ClientID, env.SignedDigest().Bytes(), env.Signature) {
			return TxBadEnvelope, nil
		}
	}
	tx, err := UnmarshalTransaction(env.Payload)
	if err != nil {
		return TxBadPayload, nil
	}
	// Endorsement policy: verify signatures, then evaluate the policy over
	// the set of peers whose endorsements verified.
	policy, ok := p.cfg.Policies[tx.ChaincodeID]
	if !ok {
		return TxEndorsementPolicyFailure, tx
	}
	endorsers := make([]string, 0, len(tx.Endorsements))
	digest := tx.ResponseDigest()
	for _, e := range tx.Endorsements {
		if p.cfg.Registry != nil {
			if !p.cfg.Registry.Verify(e.PeerID, digest.Bytes(), e.Signature) {
				continue
			}
		}
		endorsers = append(endorsers, e.PeerID)
	}
	if !policy.Satisfied(endorsers) {
		return TxEndorsementPolicyFailure, tx
	}
	// MVCC: every read version must still be current, considering both the
	// committed state and earlier valid transactions in this block.
	for _, rd := range tx.RWSet.Reads {
		if overlay[rd.Key] {
			return TxMVCCConflict, tx
		}
		version, exists := p.db.VersionOf(rd.Key)
		if exists != rd.Exists || (exists && version != rd.Version) {
			return TxMVCCConflict, tx
		}
	}
	return TxValid, tx
}
