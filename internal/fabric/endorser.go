package fabric

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
)

// Proposal is a client's request to simulate a chaincode invocation
// (protocol step 1: a signed request carrying chaincode id, timestamp, and
// payload).
type Proposal struct {
	TxID              string
	ChannelID         string
	ChaincodeID       string
	Fn                string
	Args              [][]byte
	ClientID          string
	TimestampUnixNano int64
}

// ProposalResponse is an endorsing peer's simulation result (protocol
// step 2): the read/write sets against its current state, the chaincode
// response, and the peer's endorsement signature.
type ProposalResponse struct {
	PeerID      string
	RWSet       RWSet
	Response    []byte
	Endorsement Endorsement
}

// Endorser is an endorsing peer: it holds the channel state, the installed
// chaincodes, and a signing key. Simulation never mutates the state.
type Endorser struct {
	id  string
	key *cryptoutil.KeyPair
	db  *StateDB

	mu         sync.RWMutex
	chaincodes map[string]Chaincode
}

// NewEndorser creates an endorsing peer over the given state database. The
// database is typically shared with the same peer's committing side.
func NewEndorser(id string, key *cryptoutil.KeyPair, db *StateDB) (*Endorser, error) {
	if id == "" {
		return nil, errors.New("endorser: empty id")
	}
	if key == nil {
		return nil, errors.New("endorser: nil key")
	}
	if db == nil {
		return nil, errors.New("endorser: nil state database")
	}
	return &Endorser{
		id:         id,
		key:        key,
		db:         db,
		chaincodes: make(map[string]Chaincode),
	}, nil
}

// ID returns the peer identity.
func (e *Endorser) ID() string { return e.id }

// Install registers a chaincode on this peer.
func (e *Endorser) Install(cc Chaincode) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.chaincodes[cc.Name()] = cc
}

// ProcessProposal simulates the proposal against the current state and
// endorses the result: it executes the chaincode with a read/write-set
// recording stub and signs the response digest.
func (e *Endorser) ProcessProposal(p *Proposal) (*ProposalResponse, error) {
	if p.TxID == "" {
		return nil, errors.New("endorser: proposal missing tx id")
	}
	e.mu.RLock()
	cc, ok := e.chaincodes[p.ChaincodeID]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("endorser %s: chaincode %q not installed", e.id, p.ChaincodeID)
	}
	stub := newSimStub(e.db)
	response, err := cc.Invoke(stub, p.Fn, p.Args)
	if err != nil {
		return nil, fmt.Errorf("endorser %s: chaincode %q: %w", e.id, p.ChaincodeID, err)
	}
	tx := &Transaction{
		TxID:        p.TxID,
		ChaincodeID: p.ChaincodeID,
		RWSet:       stub.rwset(),
		Response:    response,
	}
	sig, err := e.key.SignDigest(tx.ResponseDigest())
	if err != nil {
		return nil, fmt.Errorf("endorser %s: sign: %w", e.id, err)
	}
	return &ProposalResponse{
		PeerID:      e.id,
		RWSet:       tx.RWSet,
		Response:    response,
		Endorsement: Endorsement{PeerID: e.id, Signature: sig},
	}, nil
}
