// Package fabric implements the Hyperledger Fabric substrate the ordering
// service plugs into (Sections 2-3 of the paper): envelopes and
// transactions, blocks with hash chaining, the block cutter, an append-only
// ledger, the versioned key/value state database, read/write sets,
// endorsement policies, MVCC validation, the chaincode engine with sample
// chaincodes, endorsing and committing peers, and a client SDK implementing
// the six-step HLF transaction protocol of Figure 2.
package fabric

import (
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// Envelope is the unit the ordering service totally orders (protocol step 4
// of Figure 2): a signed wrapper around a transaction proposal. The orderer
// never interprets Payload; only ChannelID is inspected, to demultiplex
// envelopes into per-channel chains.
type Envelope struct {
	// ChannelID names the private blockchain this envelope belongs to.
	ChannelID string
	// ClientID identifies the submitting client.
	ClientID string
	// TimestampUnixNano is the client's submission time.
	TimestampUnixNano int64
	// Payload is the marshalled Transaction (or arbitrary bytes in
	// benchmarks, which reproduce the paper's envelope-size sweeps).
	Payload []byte
	// Signature is the client's signature over the envelope digest.
	Signature []byte
}

// Marshal encodes the envelope deterministically.
func (e *Envelope) Marshal() []byte {
	w := wire.NewWriter(len(e.ChannelID) + len(e.ClientID) + len(e.Payload) + len(e.Signature) + 32)
	w.PutString(e.ChannelID)
	w.PutString(e.ClientID)
	w.PutInt64(e.TimestampUnixNano)
	w.PutBytes(e.Payload)
	w.PutBytes(e.Signature)
	return w.Bytes()
}

// UnmarshalEnvelope decodes an envelope.
func UnmarshalEnvelope(b []byte) (*Envelope, error) {
	r := wire.NewReader(b)
	e := &Envelope{
		ChannelID:         r.String(),
		ClientID:          r.String(),
		TimestampUnixNano: r.Int64(),
		Payload:           r.BytesCopy(),
		Signature:         r.BytesCopy(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("envelope: %w", err)
	}
	return e, nil
}

// SignedDigest returns the digest a client signs: everything except the
// signature itself.
func (e *Envelope) SignedDigest() cryptoutil.Digest {
	w := wire.NewWriter(len(e.ChannelID) + len(e.ClientID) + len(e.Payload) + 32)
	w.PutString(e.ChannelID)
	w.PutString(e.ClientID)
	w.PutInt64(e.TimestampUnixNano)
	w.PutBytes(e.Payload)
	return cryptoutil.Hash(w.Bytes())
}

// Sign fills in the envelope signature with the given key.
func (e *Envelope) Sign(key *cryptoutil.KeyPair) error {
	sig, err := key.SignDigest(e.SignedDigest())
	if err != nil {
		return fmt.Errorf("sign envelope: %w", err)
	}
	e.Signature = sig
	return nil
}

// ChannelOf cheaply extracts the channel id from a marshalled envelope
// without decoding the payload (the ordering node's hot path).
func ChannelOf(raw []byte) (string, error) {
	r := wire.NewReader(raw)
	ch := r.String()
	if r.Err() != nil {
		return "", fmt.Errorf("envelope channel: %w", r.Err())
	}
	return ch, nil
}

// PeekEnvelope extracts the channel and client ids without decoding the
// payload. The ordering node uses it to demultiplex envelopes and to
// recognize time-to-cut markers.
func PeekEnvelope(raw []byte) (channel, client string, err error) {
	r := wire.NewReader(raw)
	channel = r.String()
	client = r.String()
	if r.Err() != nil {
		return "", "", fmt.Errorf("envelope peek: %w", r.Err())
	}
	return channel, client, nil
}

// PeekTimestamp extracts the client submission timestamp from a marshalled
// envelope without decoding the payload. The observability layer uses it as
// the broadcast-received anchor of the per-stage latency trace.
func PeekTimestamp(raw []byte) (int64, error) {
	r := wire.NewReader(raw)
	_ = r.String() // channel
	_ = r.String() // client
	ts := r.Int64()
	if r.Err() != nil {
		return 0, fmt.Errorf("envelope timestamp: %w", r.Err())
	}
	return ts, nil
}

// Version is the commit position that last wrote a key: the block number
// and the transaction index inside that block. HLF models its state as a
// versioned key/value store (Section 3).
type Version struct {
	BlockNum uint64
	TxNum    uint32
}

// Less orders versions lexicographically.
func (v Version) Less(o Version) bool {
	if v.BlockNum != o.BlockNum {
		return v.BlockNum < o.BlockNum
	}
	return v.TxNum < o.TxNum
}

// KVRead records that a transaction simulation read a key at a version
// (protocol step 2: the read set carries versioned keys).
type KVRead struct {
	Key     string
	Version Version
	Exists  bool // false when the key was absent at simulation time
}

// KVWrite records a state update produced by simulation.
type KVWrite struct {
	Key    string
	Value  []byte
	Delete bool
}

// RWSet is a transaction's read/write set.
type RWSet struct {
	Reads  []KVRead
	Writes []KVWrite
}

func (rw *RWSet) marshalInto(w *wire.Writer) {
	w.PutUvarint(uint64(len(rw.Reads)))
	for _, rd := range rw.Reads {
		w.PutString(rd.Key)
		w.PutUint64(rd.Version.BlockNum)
		w.PutUint32(rd.Version.TxNum)
		w.PutBool(rd.Exists)
	}
	w.PutUvarint(uint64(len(rw.Writes)))
	for _, wr := range rw.Writes {
		w.PutString(wr.Key)
		w.PutBytes(wr.Value)
		w.PutBool(wr.Delete)
	}
}

func readRWSet(r *wire.Reader) RWSet {
	var rw RWSet
	nReads := r.Uvarint()
	if nReads > 1<<20 {
		return rw
	}
	rw.Reads = make([]KVRead, 0, nReads)
	for i := uint64(0); i < nReads; i++ {
		rw.Reads = append(rw.Reads, KVRead{
			Key:     r.String(),
			Version: Version{BlockNum: r.Uint64(), TxNum: r.Uint32()},
			Exists:  r.Bool(),
		})
	}
	nWrites := r.Uvarint()
	if nWrites > 1<<20 {
		return rw
	}
	rw.Writes = make([]KVWrite, 0, nWrites)
	for i := uint64(0); i < nWrites; i++ {
		rw.Writes = append(rw.Writes, KVWrite{
			Key:    r.String(),
			Value:  r.BytesCopy(),
			Delete: r.Bool(),
		})
	}
	return rw
}

// Marshal encodes the read/write set deterministically.
func (rw *RWSet) Marshal() []byte {
	w := wire.NewWriter(64)
	rw.marshalInto(w)
	return w.Bytes()
}

// UnmarshalRWSet decodes a read/write set.
func UnmarshalRWSet(b []byte) (RWSet, error) {
	r := wire.NewReader(b)
	rw := readRWSet(r)
	if err := r.Finish(); err != nil {
		return RWSet{}, fmt.Errorf("rwset: %w", err)
	}
	return rw, nil
}

// Endorsement is one endorsing peer's signature over a proposal response
// (protocol step 2).
type Endorsement struct {
	PeerID    string
	Signature []byte
}

// Transaction is the payload of an envelope in the full HLF flow: the
// simulated read/write sets plus the collected endorsements (protocol
// step 3).
type Transaction struct {
	TxID         string
	ChaincodeID  string
	RWSet        RWSet
	Response     []byte
	Endorsements []Endorsement
}

// ResponseDigest is the digest each endorsing peer signs: it binds the
// transaction id, chaincode, read/write sets, and the chaincode response.
func (tx *Transaction) ResponseDigest() cryptoutil.Digest {
	w := wire.NewWriter(128)
	w.PutString(tx.TxID)
	w.PutString(tx.ChaincodeID)
	tx.RWSet.marshalInto(w)
	w.PutBytes(tx.Response)
	return cryptoutil.Hash(w.Bytes())
}

// Marshal encodes the transaction.
func (tx *Transaction) Marshal() []byte {
	w := wire.NewWriter(256)
	w.PutString(tx.TxID)
	w.PutString(tx.ChaincodeID)
	tx.RWSet.marshalInto(w)
	w.PutBytes(tx.Response)
	w.PutUvarint(uint64(len(tx.Endorsements)))
	for _, e := range tx.Endorsements {
		w.PutString(e.PeerID)
		w.PutBytes(e.Signature)
	}
	return w.Bytes()
}

// UnmarshalTransaction decodes a transaction.
func UnmarshalTransaction(b []byte) (*Transaction, error) {
	r := wire.NewReader(b)
	tx := &Transaction{
		TxID:        r.String(),
		ChaincodeID: r.String(),
		RWSet:       readRWSet(r),
		Response:    r.BytesCopy(),
	}
	n := r.Uvarint()
	if n > 1<<16 {
		return nil, errors.New("transaction: endorsement count out of range")
	}
	tx.Endorsements = make([]Endorsement, 0, n)
	for i := uint64(0); i < n; i++ {
		tx.Endorsements = append(tx.Endorsements, Endorsement{
			PeerID:    r.String(),
			Signature: r.BytesCopy(),
		})
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("transaction: %w", err)
	}
	return tx, nil
}
