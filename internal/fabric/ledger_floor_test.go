package fabric

import (
	"errors"
	"testing"

	"repro/internal/cryptoutil"
)

// memBackend is a map-backed BlockBackend + BlockReader + BlockRebaser
// standing in for the durable store in ledger tests.
type memBackend struct {
	blocks  map[uint64]*Block
	floor   uint64
	rebased bool
}

func newMemBackend() *memBackend { return &memBackend{blocks: make(map[uint64]*Block)} }

func (m *memBackend) PutBlock(_ string, b *Block) error {
	m.blocks[b.Header.Number] = b
	return nil
}

func (m *memBackend) ReadBlocks(_ string, start uint64, max int) ([]*Block, error) {
	if start < m.floor {
		return nil, &PrunedError{Floor: m.floor}
	}
	var out []*Block
	for n := start; len(out) < max; n++ {
		b, ok := m.blocks[n]
		if !ok {
			break
		}
		out = append(out, b)
	}
	return out, nil
}

func (m *memBackend) RebaseBlocks(_ string, floor uint64, _ cryptoutil.Digest) error {
	m.floor = floor
	m.rebased = true
	return nil
}

// floorChain builds a verified chain of n blocks starting at number
// `start` with the given previous-hash anchor.
func floorChain(start uint64, anchor cryptoutil.Digest, n int) []*Block {
	blocks := make([]*Block, 0, n)
	prev := anchor
	for i := 0; i < n; i++ {
		env := &Envelope{ChannelID: "ch", ClientID: "c", Payload: []byte{byte(i)}}
		b := NewBlock(start+uint64(i), prev, [][]byte{env.Marshal()})
		prev = b.Header.Hash()
		blocks = append(blocks, b)
	}
	return blocks
}

func TestRestoredLedgerServesFromFloorAndAnswersPruned(t *testing.T) {
	backend := newMemBackend()
	anchor := cryptoutil.Hash([]byte("pruned-block-9-header"))
	chain := floorChain(10, anchor, 8) // blocks 10..17 retained
	for _, b := range chain {
		backend.PutBlock("ch", b)
	}
	backend.floor = 10

	led := RestoreLedger("ch", backend, ChainState{
		Floor:    10,
		Anchor:   anchor,
		Height:   18,
		LastHash: chain[7].Header.Hash(),
	})
	if led.Height() != 18 || led.Floor() != 10 {
		t.Fatalf("restored: height %d floor %d", led.Height(), led.Floor())
	}

	// Reads below the floor answer the typed pruned error.
	var pe *PrunedError
	if _, err := led.Block(3); !errors.As(err, &pe) || pe.Floor != 10 {
		t.Fatalf("Block(3): %v", err)
	}
	if _, err := led.Range(0, 18); !errors.Is(err, ErrPruned) {
		t.Fatal("Range below the floor did not answer pruned")
	}
	// Blocks() clamps instead of failing (legacy convenience reader).
	if got := led.Blocks(0); len(got) != 8 || got[0].Header.Number != 10 {
		t.Fatalf("Blocks(0) = %d blocks from %d", len(got), got[0].Header.Number)
	}
	// The floor upward pages from the backend and verifies against the
	// anchor.
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain from floor: %v", err)
	}

	// Appends continue the restored frontier.
	next := floorChain(18, chain[7].Header.Hash(), 1)[0]
	if err := led.Append(next); err != nil {
		t.Fatalf("append at frontier: %v", err)
	}
	// A wrong first-append linkage is rejected even right above a floor.
	bad := floorChain(19, cryptoutil.Hash([]byte("wrong")), 1)[0]
	if err := led.Append(bad); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("forged append: %v", err)
	}
}

func TestRestoredLedgerFirstAppendChecksAnchor(t *testing.T) {
	backend := newMemBackend()
	anchor := cryptoutil.Hash([]byte("anchor"))
	backend.floor = 5
	led := RestoreLedger("ch", backend, ChainState{Floor: 5, Anchor: anchor, Height: 5})

	wrong := floorChain(5, cryptoutil.Hash([]byte("not-the-anchor")), 1)[0]
	if err := led.Append(wrong); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("append without anchor linkage: %v", err)
	}
	right := floorChain(5, anchor, 1)[0]
	if err := led.Append(right); err != nil {
		t.Fatalf("append with anchor linkage: %v", err)
	}
}

func TestLedgerAdvanceFloor(t *testing.T) {
	backend := newMemBackend()
	led := NewPersistentLedger("ch", backend)
	chain := floorChain(0, cryptoutil.Digest{}, 10)
	for _, b := range chain {
		if err := led.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := led.AdvanceFloor(6); err != nil {
		t.Fatalf("AdvanceFloor: %v", err)
	}
	backend.floor = 6 // the store compacted alongside
	if led.Floor() != 6 {
		t.Fatalf("floor = %d", led.Floor())
	}
	if _, err := led.Block(5); !errors.Is(err, ErrPruned) {
		t.Fatal("read below the advanced floor succeeded")
	}
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain after advance: %v", err)
	}
	// Regressions and past-height floors are no-ops.
	if err := led.AdvanceFloor(2); err != nil || led.Floor() != 6 {
		t.Fatalf("floor regressed: %d, err %v", led.Floor(), err)
	}
	if err := led.AdvanceFloor(10); err != nil || led.Floor() != 6 {
		t.Fatalf("floor past height: %d, err %v", led.Floor(), err)
	}
}

func TestLedgerRebase(t *testing.T) {
	backend := newMemBackend()
	led := NewPersistentLedger("ch", backend)
	for _, b := range floorChain(0, cryptoutil.Digest{}, 3) {
		if err := led.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	anchor := cryptoutil.Hash([]byte("block-19"))
	if err := led.Rebase(20, anchor); err != nil {
		t.Fatalf("Rebase: %v", err)
	}
	if !backend.rebased {
		t.Fatal("backend was not rebased first")
	}
	if led.Height() != 20 || led.Floor() != 20 {
		t.Fatalf("after rebase: height %d floor %d", led.Height(), led.Floor())
	}
	jumped := floorChain(20, anchor, 2)
	for _, b := range jumped {
		if err := led.Append(b); err != nil {
			t.Fatalf("append after rebase: %v", err)
		}
	}
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain after rebase: %v", err)
	}
	// Rebasing behind the height is refused.
	if err := led.Rebase(5, anchor); err == nil {
		t.Fatal("backward rebase succeeded")
	}
}
