package fabric

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cryptoutil"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	in := &Envelope{
		ChannelID:         "ch1",
		ClientID:          "client-A",
		TimestampUnixNano: 12345,
		Payload:           []byte("payload"),
		Signature:         []byte("sig"),
	}
	out, err := UnmarshalEnvelope(in.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.ChannelID != in.ChannelID || out.ClientID != in.ClientID ||
		out.TimestampUnixNano != in.TimestampUnixNano ||
		!bytes.Equal(out.Payload, in.Payload) || !bytes.Equal(out.Signature, in.Signature) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(ch, client string, ts int64, payload, sig []byte) bool {
		in := &Envelope{ChannelID: ch, ClientID: client, TimestampUnixNano: ts,
			Payload: payload, Signature: sig}
		out, err := UnmarshalEnvelope(in.Marshal())
		if err != nil {
			return false
		}
		return out.ChannelID == ch && out.ClientID == client &&
			out.TimestampUnixNano == ts && bytes.Equal(out.Payload, payload) &&
			bytes.Equal(out.Signature, sig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelOfFastPath(t *testing.T) {
	env := &Envelope{ChannelID: "payments", Payload: make([]byte, 4096)}
	ch, err := ChannelOf(env.Marshal())
	if err != nil {
		t.Fatalf("ChannelOf: %v", err)
	}
	if ch != "payments" {
		t.Fatalf("channel = %q", ch)
	}
	if _, err := ChannelOf(nil); err == nil {
		t.Fatal("ChannelOf accepted empty input")
	}
}

func TestEnvelopeSignVerify(t *testing.T) {
	kp, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	env := &Envelope{ChannelID: "ch1", ClientID: "c", Payload: []byte("data")}
	if err := env.Sign(kp); err != nil {
		t.Fatalf("sign: %v", err)
	}
	if !kp.Public().VerifyDigest(env.SignedDigest(), env.Signature) {
		t.Fatal("envelope signature does not verify")
	}
	env.Payload = []byte("tampered")
	if kp.Public().VerifyDigest(env.SignedDigest(), env.Signature) {
		t.Fatal("signature verified after payload tampering")
	}
}

func TestRWSetRoundTrip(t *testing.T) {
	in := RWSet{
		Reads: []KVRead{
			{Key: "a", Version: Version{BlockNum: 1, TxNum: 2}, Exists: true},
			{Key: "missing", Exists: false},
		},
		Writes: []KVWrite{
			{Key: "a", Value: []byte("v")},
			{Key: "gone", Delete: true},
		},
	}
	out, err := UnmarshalRWSet(in.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Reads) != 2 || len(out.Writes) != 2 {
		t.Fatalf("round trip sizes: %+v", out)
	}
	if out.Reads[0] != in.Reads[0] || out.Reads[1] != in.Reads[1] {
		t.Fatalf("reads mismatch: %+v", out.Reads)
	}
	if out.Writes[1].Key != "gone" || !out.Writes[1].Delete {
		t.Fatalf("writes mismatch: %+v", out.Writes)
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	in := &Transaction{
		TxID:        "tx-1",
		ChaincodeID: "kv",
		RWSet: RWSet{
			Reads:  []KVRead{{Key: "k", Version: Version{BlockNum: 3}, Exists: true}},
			Writes: []KVWrite{{Key: "k", Value: []byte("v2")}},
		},
		Response: []byte("ok"),
		Endorsements: []Endorsement{
			{PeerID: "peer0", Signature: []byte("s0")},
			{PeerID: "peer1", Signature: []byte("s1")},
		},
	}
	out, err := UnmarshalTransaction(in.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.TxID != in.TxID || out.ChaincodeID != in.ChaincodeID ||
		len(out.Endorsements) != 2 || out.Endorsements[1].PeerID != "peer1" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out.ResponseDigest() != in.ResponseDigest() {
		t.Fatal("response digest unstable across round trip")
	}
}

func TestResponseDigestBindsEverything(t *testing.T) {
	base := &Transaction{TxID: "t", ChaincodeID: "kv", Response: []byte("r")}
	d := base.ResponseDigest()

	alt := *base
	alt.TxID = "t2"
	if alt.ResponseDigest() == d {
		t.Fatal("digest must bind tx id")
	}
	alt = *base
	alt.Response = []byte("r2")
	if alt.ResponseDigest() == d {
		t.Fatal("digest must bind response")
	}
	alt = *base
	alt.RWSet.Writes = []KVWrite{{Key: "k", Value: []byte("v")}}
	if alt.ResponseDigest() == d {
		t.Fatal("digest must bind write set")
	}
	// Endorsements are deliberately outside the digest: each endorser
	// signs the same digest.
	alt = *base
	alt.Endorsements = []Endorsement{{PeerID: "p", Signature: []byte("s")}}
	if alt.ResponseDigest() != d {
		t.Fatal("digest must not bind endorsements")
	}
}

func TestVersionLess(t *testing.T) {
	if !(Version{BlockNum: 1, TxNum: 5}).Less(Version{BlockNum: 2, TxNum: 0}) {
		t.Fatal("block number must dominate")
	}
	if !(Version{BlockNum: 1, TxNum: 1}).Less(Version{BlockNum: 1, TxNum: 2}) {
		t.Fatal("tx number must break ties")
	}
	if (Version{BlockNum: 1, TxNum: 1}).Less(Version{BlockNum: 1, TxNum: 1}) {
		t.Fatal("equal versions are not less")
	}
}
