package fabric

import (
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// BlockHeader is the part of a block every ordering node signs: the block
// number, the hash of the previous header, and the hash of this block's
// envelopes (Figure 1: each block carries the cryptographic hash of the
// previous block, so forging block j requires forging all of j+1..i).
type BlockHeader struct {
	Number   uint64
	PrevHash cryptoutil.Digest
	DataHash cryptoutil.Digest
}

// headerWireSize is the fixed encoding size of a header.
const headerWireSize = 8 + 2*cryptoutil.DigestSize

// Marshal encodes the header in its fixed layout.
func (h *BlockHeader) Marshal() []byte {
	w := wire.NewWriter(headerWireSize)
	w.PutUint64(h.Number)
	w.PutRaw(h.PrevHash[:])
	w.PutRaw(h.DataHash[:])
	return w.Bytes()
}

func readHeader(r *wire.Reader) BlockHeader {
	var h BlockHeader
	h.Number = r.Uint64()
	copy(h.PrevHash[:], r.Raw(cryptoutil.DigestSize))
	copy(h.DataHash[:], r.Raw(cryptoutil.DigestSize))
	return h
}

// Hash returns the header digest: the value chained into the next block and
// the value ordering nodes sign. Signing the (constant-size) header rather
// than the whole block is why signature throughput is independent of
// envelope and block sizes (Section 6.1).
func (h *BlockHeader) Hash() cryptoutil.Digest {
	return cryptoutil.Hash(h.Marshal())
}

// BlockSignature is one ordering node's signature over the header hash.
type BlockSignature struct {
	SignerID  string
	Signature []byte
}

// Block is the unit appended to a channel's chain: a header, the ordered
// envelopes, and the ordering nodes' signatures.
type Block struct {
	Header     BlockHeader
	Envelopes  [][]byte // marshalled envelopes, in total order
	Signatures []BlockSignature
}

// ComputeDataHash hashes the ordered envelopes of a block.
func ComputeDataHash(envelopes [][]byte) cryptoutil.Digest {
	return cryptoutil.HashConcat(envelopes...)
}

// NewBlock assembles an unsigned block extending prevHeader with the given
// envelopes.
func NewBlock(number uint64, prevHash cryptoutil.Digest, envelopes [][]byte) *Block {
	return &Block{
		Header: BlockHeader{
			Number:   number,
			PrevHash: prevHash,
			DataHash: ComputeDataHash(envelopes),
		},
		Envelopes: envelopes,
	}
}

// MarshaledSize returns an upper bound on the block's encoded size
// (callers size encode buffers with it; the hot persist path uses pooled
// buffers and must not guess low).
func (b *Block) MarshaledSize() int {
	size := headerWireSize + 16
	for _, e := range b.Envelopes {
		size += len(e) + 4
	}
	for _, s := range b.Signatures {
		size += len(s.SignerID) + len(s.Signature) + 8
	}
	return size
}

// MarshalInto appends the block's encoding to an existing writer. The
// storage layer uses it to frame block records in pooled buffers without
// an intermediate allocation per put.
func (b *Block) MarshalInto(w *wire.Writer) {
	w.PutUint64(b.Header.Number)
	w.PutRaw(b.Header.PrevHash[:])
	w.PutRaw(b.Header.DataHash[:])
	w.PutBytesSlice(b.Envelopes)
	w.PutUvarint(uint64(len(b.Signatures)))
	for _, s := range b.Signatures {
		w.PutString(s.SignerID)
		w.PutBytes(s.Signature)
	}
}

// Marshal encodes the block.
func (b *Block) Marshal() []byte {
	w := wire.NewWriter(b.MarshaledSize())
	b.MarshalInto(w)
	return w.Bytes()
}

// UnmarshalBlock decodes a block.
func UnmarshalBlock(raw []byte) (*Block, error) {
	r := wire.NewReader(raw)
	b := &Block{
		Header:    readHeader(r),
		Envelopes: r.BytesSlice(),
	}
	n := r.Uvarint()
	if n > 1<<16 {
		return nil, errors.New("block: signature count out of range")
	}
	b.Signatures = make([]BlockSignature, 0, n)
	for i := uint64(0); i < n; i++ {
		b.Signatures = append(b.Signatures, BlockSignature{
			SignerID:  r.String(),
			Signature: r.BytesCopy(),
		})
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("block: %w", err)
	}
	return b, nil
}

// CheckIntegrity verifies that the data hash matches the envelopes.
func (b *Block) CheckIntegrity() error {
	if got := ComputeDataHash(b.Envelopes); got != b.Header.DataHash {
		return fmt.Errorf("block %d: data hash mismatch", b.Header.Number)
	}
	return nil
}

// VerifySignatures counts how many of the block's signatures verify against
// the registry. Frontends configured for verification accept a block once
// f+1 signatures check out (footnote 8 of the paper).
func (b *Block) VerifySignatures(registry *cryptoutil.Registry) int {
	digest := b.Header.Hash()
	valid := 0
	seen := make(map[string]bool, len(b.Signatures))
	for _, s := range b.Signatures {
		if seen[s.SignerID] {
			continue
		}
		seen[s.SignerID] = true
		if registry.Verify(s.SignerID, digest.Bytes(), s.Signature) {
			valid++
		}
	}
	return valid
}

// VerifyRange authenticates a fetched block range [from, to) against a
// trusted anchor: anchorPrev is the PrevHash of trusted block `to` (i.e.
// the header hash of block to-1). Because every header embeds the previous
// header's hash, linking the top of the range into the anchor
// transitively authenticates every block below it, so a single untrusted
// peer cannot feed a forged or diverging history. For from == 0 the
// genesis block must additionally carry a zero previous hash.
func VerifyRange(blocks []*Block, from, to uint64, anchorPrev cryptoutil.Digest) error {
	if to <= from {
		return fmt.Errorf("verify range: empty range %d..%d", from, to)
	}
	if uint64(len(blocks)) != to-from {
		return fmt.Errorf("verify range: %d blocks for range %d..%d", len(blocks), from, to-1)
	}
	if blocks[0].Header.Number != from {
		return fmt.Errorf("verify range: starts at block %d, want %d", blocks[0].Header.Number, from)
	}
	if from == 0 && !blocks[0].Header.PrevHash.IsZero() {
		return fmt.Errorf("verify range: genesis has non-zero previous hash")
	}
	if err := VerifyChain(blocks); err != nil {
		return err
	}
	if got := blocks[len(blocks)-1].Header.Hash(); got != anchorPrev {
		return fmt.Errorf("verify range: block %d does not link into the trusted anchor",
			to-1)
	}
	return nil
}

// VerifyChain checks the hash chain across consecutive blocks: block i+1
// must reference the hash of block i's header and carry a data hash
// matching its envelopes.
func VerifyChain(blocks []*Block) error {
	for i, b := range blocks {
		if err := b.CheckIntegrity(); err != nil {
			return err
		}
		if i == 0 {
			continue
		}
		prev := blocks[i-1]
		if b.Header.Number != prev.Header.Number+1 {
			return fmt.Errorf("block %d follows block %d: number gap",
				b.Header.Number, prev.Header.Number)
		}
		if b.Header.PrevHash != prev.Header.Hash() {
			return fmt.Errorf("block %d: previous-hash mismatch", b.Header.Number)
		}
	}
	return nil
}
