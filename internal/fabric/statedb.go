package fabric

import (
	"sort"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// VersionedValue is a state value plus the commit position that wrote it.
type VersionedValue struct {
	Value   []byte
	Version Version
}

// StateDB is the versioned key/value store endorsing peers simulate against
// and committing peers apply write sets to (Section 3: the state of a
// database "modeled as a versioned key/value store"). Safe for concurrent
// use.
type StateDB struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
}

// NewStateDB creates an empty state database.
func NewStateDB() *StateDB {
	return &StateDB{data: make(map[string]VersionedValue)}
}

// Get returns the value and version of a key.
func (db *StateDB) Get(key string) (VersionedValue, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.data[key]
	if !ok {
		return VersionedValue{}, false
	}
	out := v
	out.Value = append([]byte(nil), v.Value...)
	return out, true
}

// VersionOf returns the version of a key and whether it exists.
func (db *StateDB) VersionOf(key string) (Version, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.data[key]
	return v.Version, ok
}

// ApplyWrites commits a write set at the given version (one transaction's
// effects). Deletes remove keys; writes replace value and version.
func (db *StateDB) ApplyWrites(writes []KVWrite, version Version) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, w := range writes {
		if w.Delete {
			delete(db.data, w.Key)
			continue
		}
		db.data[w.Key] = VersionedValue{
			Value:   append([]byte(nil), w.Value...),
			Version: version,
		}
	}
}

// Len returns the number of keys.
func (db *StateDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data)
}

// Keys returns all keys in sorted order.
func (db *StateDB) Keys() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.data))
	for k := range db.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Hash returns a deterministic digest of the full state (keys, values, and
// versions in sorted key order). Used by tests to check that every peer
// that processed the same chain holds the same state.
func (db *StateDB) Hash() cryptoutil.Digest {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.data))
	for k := range db.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := wire.NewWriter(len(keys) * 32)
	for _, k := range keys {
		v := db.data[k]
		w.PutString(k)
		w.PutBytes(v.Value)
		w.PutUint64(v.Version.BlockNum)
		w.PutUint32(v.Version.TxNum)
	}
	return cryptoutil.Hash(w.Bytes())
}
