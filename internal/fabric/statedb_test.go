package fabric

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStateDBGetApply(t *testing.T) {
	db := NewStateDB()
	if _, ok := db.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	v1 := Version{BlockNum: 1, TxNum: 0}
	db.ApplyWrites([]KVWrite{{Key: "a", Value: []byte("1")}}, v1)
	got, ok := db.Get("a")
	if !ok || string(got.Value) != "1" || got.Version != v1 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	ver, ok := db.VersionOf("a")
	if !ok || ver != v1 {
		t.Fatalf("VersionOf = %+v, %v", ver, ok)
	}

	v2 := Version{BlockNum: 2, TxNum: 3}
	db.ApplyWrites([]KVWrite{
		{Key: "a", Value: []byte("2")},
		{Key: "b", Value: []byte("x")},
	}, v2)
	got, _ = db.Get("a")
	if string(got.Value) != "2" || got.Version != v2 {
		t.Fatalf("overwrite failed: %+v", got)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}

	db.ApplyWrites([]KVWrite{{Key: "a", Delete: true}}, Version{BlockNum: 3})
	if _, ok := db.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestStateDBKeysSorted(t *testing.T) {
	db := NewStateDB()
	db.ApplyWrites([]KVWrite{
		{Key: "z", Value: []byte("1")},
		{Key: "a", Value: []byte("2")},
		{Key: "m", Value: []byte("3")},
	}, Version{})
	keys := db.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "m" || keys[2] != "z" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestStateDBGetCopies(t *testing.T) {
	db := NewStateDB()
	db.ApplyWrites([]KVWrite{{Key: "k", Value: []byte("abc")}}, Version{})
	got, _ := db.Get("k")
	got.Value[0] = 'X'
	again, _ := db.Get("k")
	if !bytes.Equal(again.Value, []byte("abc")) {
		t.Fatal("Get aliased internal storage")
	}
}

func TestStateDBApplyCopies(t *testing.T) {
	db := NewStateDB()
	val := []byte("abc")
	db.ApplyWrites([]KVWrite{{Key: "k", Value: val}}, Version{})
	val[0] = 'X'
	got, _ := db.Get("k")
	if !bytes.Equal(got.Value, []byte("abc")) {
		t.Fatal("ApplyWrites aliased the caller's slice")
	}
}

func TestStateDBHashDeterminism(t *testing.T) {
	// Two databases receiving the same writes in the same order hash
	// identically; different content hashes differently.
	mk := func() *StateDB {
		db := NewStateDB()
		db.ApplyWrites([]KVWrite{{Key: "a", Value: []byte("1")}}, Version{BlockNum: 1})
		db.ApplyWrites([]KVWrite{{Key: "b", Value: []byte("2")}}, Version{BlockNum: 2})
		return db
	}
	if mk().Hash() != mk().Hash() {
		t.Fatal("identical histories produced different hashes")
	}
	other := mk()
	other.ApplyWrites([]KVWrite{{Key: "c", Value: []byte("3")}}, Version{BlockNum: 3})
	if other.Hash() == mk().Hash() {
		t.Fatal("different states hashed equal")
	}
}

func TestStateDBHashInsensitiveToWriteOrderAcrossKeys(t *testing.T) {
	// The hash is over sorted keys: interleaving order of distinct keys
	// within the same version must not matter.
	f := func(keysRaw []string) bool {
		if len(keysRaw) == 0 {
			return true
		}
		seen := map[string]bool{}
		var keys []string
		for _, k := range keysRaw {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		db1 := NewStateDB()
		db2 := NewStateDB()
		v := Version{BlockNum: 1}
		for _, k := range keys {
			db1.ApplyWrites([]KVWrite{{Key: k, Value: []byte(k)}}, v)
		}
		for i := len(keys) - 1; i >= 0; i-- {
			db2.ApplyWrites([]KVWrite{{Key: keys[i], Value: []byte(keys[i])}}, v)
		}
		return db1.Hash() == db2.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
