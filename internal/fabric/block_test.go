package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/cryptoutil"
)

func testEnvelopes(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		env := &Envelope{ChannelID: "ch", ClientID: "c", Payload: []byte{byte(i)}}
		out[i] = env.Marshal()
	}
	return out
}

func TestBlockRoundTrip(t *testing.T) {
	in := NewBlock(7, cryptoutil.Hash([]byte("prev")), testEnvelopes(3))
	in.Signatures = []BlockSignature{{SignerID: "node0", Signature: []byte("sig")}}
	out, err := UnmarshalBlock(in.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Header != in.Header || len(out.Envelopes) != 3 || len(out.Signatures) != 1 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if err := out.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestBlockHeaderHashIsConstantSize(t *testing.T) {
	// The signature input is the header hash, whose preimage has fixed
	// size regardless of envelope count or size — the reason Figure 6's
	// signing throughput is independent of block content (Section 6.1).
	small := NewBlock(0, cryptoutil.Digest{}, testEnvelopes(1))
	big := NewBlock(0, cryptoutil.Digest{}, [][]byte{make([]byte, 1<<20)})
	if len(small.Header.Marshal()) != len(big.Header.Marshal()) {
		t.Fatal("header encoding size depends on content")
	}
	if len(small.Header.Marshal()) != headerWireSize {
		t.Fatalf("header size = %d, want %d", len(small.Header.Marshal()), headerWireSize)
	}
}

func TestBlockIntegrityDetectsTampering(t *testing.T) {
	b := NewBlock(0, cryptoutil.Digest{}, testEnvelopes(2))
	if err := b.CheckIntegrity(); err != nil {
		t.Fatalf("fresh block fails integrity: %v", err)
	}
	b.Envelopes[0][0] ^= 0xff
	if err := b.CheckIntegrity(); err == nil {
		t.Fatal("tampered envelope not detected")
	}
}

func TestVerifyChain(t *testing.T) {
	b0 := NewBlock(0, cryptoutil.Digest{}, testEnvelopes(2))
	b1 := NewBlock(1, b0.Header.Hash(), testEnvelopes(3))
	b2 := NewBlock(2, b1.Header.Hash(), testEnvelopes(1))
	if err := VerifyChain([]*Block{b0, b1, b2}); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Break the link.
	bad := NewBlock(2, b0.Header.Hash(), testEnvelopes(1))
	if err := VerifyChain([]*Block{b0, b1, bad}); err == nil {
		t.Fatal("broken chain accepted")
	}
	// Gap in numbering.
	b3 := NewBlock(4, b2.Header.Hash(), testEnvelopes(1))
	if err := VerifyChain([]*Block{b0, b1, b2, b3}); err == nil {
		t.Fatal("numbering gap accepted")
	}
}

func TestChainTamperingCascades(t *testing.T) {
	// Forging block j requires forging all subsequent blocks (Section 2).
	blocks := make([]*Block, 4)
	prev := cryptoutil.Digest{}
	for i := range blocks {
		blocks[i] = NewBlock(uint64(i), prev, testEnvelopes(2))
		prev = blocks[i].Header.Hash()
	}
	if err := VerifyChain(blocks); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Replace block 1's data and fix only block 1's own data hash: the
	// chain must still fail at block 2's prev-hash link.
	blocks[1].Envelopes = testEnvelopes(3)
	blocks[1].Header.DataHash = ComputeDataHash(blocks[1].Envelopes)
	if err := VerifyChain(blocks); err == nil {
		t.Fatal("mid-chain forgery accepted")
	}
}

func TestBlockSignatureVerification(t *testing.T) {
	registry := cryptoutil.NewRegistry()
	keys := make([]*cryptoutil.KeyPair, 3)
	for i := range keys {
		kp, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		keys[i] = kp
		registry.Register(string(rune('a'+i)), kp.Public())
	}
	b := NewBlock(0, cryptoutil.Digest{}, testEnvelopes(2))
	digest := b.Header.Hash()
	for i, kp := range keys {
		sig, err := kp.SignDigest(digest)
		if err != nil {
			t.Fatalf("sign: %v", err)
		}
		b.Signatures = append(b.Signatures, BlockSignature{
			SignerID: string(rune('a' + i)), Signature: sig,
		})
	}
	// Add a bogus signature and a duplicate signer.
	b.Signatures = append(b.Signatures,
		BlockSignature{SignerID: "z", Signature: []byte("junk")},
		BlockSignature{SignerID: "a", Signature: b.Signatures[0].Signature},
	)
	if got := b.VerifySignatures(registry); got != 3 {
		t.Fatalf("VerifySignatures = %d, want 3", got)
	}
}

func TestDataHashProperty(t *testing.T) {
	f := func(envelopes [][]byte) bool {
		return ComputeDataHash(envelopes) == ComputeDataHash(envelopes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Boundary separation.
	a := ComputeDataHash([][]byte{[]byte("ab"), []byte("c")})
	b := ComputeDataHash([][]byte{[]byte("a"), []byte("bc")})
	if a == b {
		t.Fatal("data hash does not separate envelope boundaries")
	}
}
