package fabric

import (
	"time"
)

// CutterConfig bounds when a block is cut. Zero values disable a bound,
// except MaxEnvelopes which defaults to 10 (the paper's small block size).
type CutterConfig struct {
	// MaxEnvelopes cuts a block after this many envelopes (the paper
	// evaluates 10 and 100).
	MaxEnvelopes int
	// MaxBytes cuts a block when the pending envelope bytes reach this
	// limit, so a few huge envelopes cannot produce an unbounded block.
	MaxBytes int
	// Timeout cuts a partial block after the oldest pending envelope has
	// waited this long; zero disables timer-based cutting.
	Timeout time.Duration
}

func (c CutterConfig) withDefaults() CutterConfig {
	if c.MaxEnvelopes <= 0 {
		c.MaxEnvelopes = 10
	}
	return c
}

// BlockCutter accumulates ordered envelopes and releases them in block-sized
// batches. It is the per-channel "blockcutter" object of the ordering node
// (Section 5.1): the node thread drains it whenever it reports a cut.
//
// BlockCutter is not safe for concurrent use; the ordering node confines it
// to the node thread, which is what keeps block formation deterministic
// across nodes.
type BlockCutter struct {
	cfg     CutterConfig
	pending [][]byte
	bytes   int
	oldest  time.Time
}

// NewBlockCutter creates a cutter with the given bounds.
func NewBlockCutter(cfg CutterConfig) *BlockCutter {
	return &BlockCutter{cfg: cfg.withDefaults()}
}

// Append adds one envelope and returns a full batch when a size bound is
// reached, or nil. The returned slice is owned by the caller.
func (c *BlockCutter) Append(envelope []byte) [][]byte {
	if len(c.pending) == 0 {
		c.oldest = time.Now()
	}
	c.pending = append(c.pending, envelope)
	c.bytes += len(envelope)
	if len(c.pending) >= c.cfg.MaxEnvelopes {
		return c.Cut()
	}
	if c.cfg.MaxBytes > 0 && c.bytes >= c.cfg.MaxBytes {
		return c.Cut()
	}
	return nil
}

// Cut drains all pending envelopes as one batch (nil when empty).
func (c *BlockCutter) Cut() [][]byte {
	if len(c.pending) == 0 {
		return nil
	}
	batch := c.pending
	c.pending = nil
	c.bytes = 0
	return batch
}

// CutIfExpired cuts a partial batch when the timeout elapsed since the
// oldest pending envelope arrived. Returns nil when no timeout is
// configured, nothing is pending, or the timer has not expired.
func (c *BlockCutter) CutIfExpired(now time.Time) [][]byte {
	if c.cfg.Timeout <= 0 || len(c.pending) == 0 {
		return nil
	}
	if now.Sub(c.oldest) < c.cfg.Timeout {
		return nil
	}
	return c.Cut()
}

// Pending returns the number of buffered envelopes.
func (c *BlockCutter) Pending() int { return len(c.pending) }

// PendingBytes returns the buffered envelope bytes.
func (c *BlockCutter) PendingBytes() int { return c.bytes }

// PendingSnapshot returns a copy of the buffered envelopes without
// draining them.
func (c *BlockCutter) PendingSnapshot() [][]byte {
	if len(c.pending) == 0 {
		return nil
	}
	out := make([][]byte, len(c.pending))
	copy(out, c.pending)
	return out
}

// OldestPending returns the arrival time of the oldest buffered envelope.
func (c *BlockCutter) OldestPending() (time.Time, bool) {
	if len(c.pending) == 0 {
		return time.Time{}, false
	}
	return c.oldest, true
}
