package fabric

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/wire"
)

// This file defines the AtomicBroadcast vocabulary shared by every orderer
// implementation (BFT frontend, solo, Kafka) and by the external client
// protocol: typed Broadcast statuses, the SeekInfo that positions a Deliver
// stream, and the BlockStream handle a Deliver call returns. The shapes
// mirror Fabric's ab.AtomicBroadcast service (Broadcast acks carry a
// common.Status; Deliver is driven by a SeekInfo of Oldest / Newest /
// Specified positions).

// BroadcastStatus is the typed acknowledgement of a Broadcast call. The
// numeric values follow Fabric's common.Status (HTTP-style codes) so the
// wire protocol can carry them verbatim.
type BroadcastStatus uint16

// Broadcast acknowledgement codes.
const (
	// StatusSuccess: the envelope was accepted for ordering.
	StatusSuccess BroadcastStatus = 200
	// StatusBadRequest: the envelope (or seek) is malformed.
	StatusBadRequest BroadcastStatus = 400
	// StatusNotFound: the channel is not served by this orderer.
	StatusNotFound BroadcastStatus = 404
	// StatusServiceUnavailable: the orderer is closed, overloaded (the
	// per-client backpressure window is full), or lost its cluster.
	StatusServiceUnavailable BroadcastStatus = 503
)

// String names the status like Fabric's common.Status.
func (s BroadcastStatus) String() string {
	switch s {
	case StatusSuccess:
		return "SUCCESS"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusServiceUnavailable:
		return "SERVICE_UNAVAILABLE"
	}
	return "STATUS_" + strconv.Itoa(int(s))
}

// Ordering-service errors shared across orderer implementations.
var (
	// ErrBadRequest mirrors StatusBadRequest.
	ErrBadRequest = errors.New("ordering: bad request")
	// ErrChannelNotFound mirrors StatusNotFound.
	ErrChannelNotFound = errors.New("ordering: channel not found")
	// ErrServiceUnavailable mirrors StatusServiceUnavailable.
	ErrServiceUnavailable = errors.New("ordering: service unavailable")
	// ErrBadSeek rejects a SeekInfo whose stop precedes its start.
	ErrBadSeek = errors.New("ordering: seek stop precedes start")
	// ErrPruned reports that the sought blocks fell below a ledger's
	// retention floor and were compacted away. Surfaced to clients as
	// StatusNotFound (Fabric's NOT_FOUND for unservable seeks). Match
	// with errors.Is; the concrete *PrunedError carries the floor.
	ErrPruned = errors.New("ordering: blocks pruned by retention")
)

// PrunedError is the typed form of ErrPruned: the requested range starts
// below Floor, the first block the responder still retains. errors.Is
// (err, ErrPruned) matches it.
type PrunedError struct {
	// Channel is the chain the seek addressed (may be empty when the
	// responder scopes the error implicitly).
	Channel string
	// Floor is the first retained block number; a client can restart
	// its seek there.
	Floor uint64
}

func (e *PrunedError) Error() string {
	if e.Channel == "" {
		return fmt.Sprintf("ordering: blocks below %d pruned by retention", e.Floor)
	}
	return fmt.Sprintf("ordering: channel %q blocks below %d pruned by retention", e.Channel, e.Floor)
}

// Is matches the ErrPruned sentinel.
func (e *PrunedError) Is(target error) bool { return target == ErrPruned }

// Err converts a status into its sentinel error (nil for StatusSuccess).
func (s BroadcastStatus) Err() error {
	switch s {
	case StatusSuccess:
		return nil
	case StatusBadRequest:
		return ErrBadRequest
	case StatusNotFound:
		return ErrChannelNotFound
	case StatusServiceUnavailable:
		return ErrServiceUnavailable
	}
	return fmt.Errorf("ordering: status %s", s)
}

// StatusOf maps an orderer error back onto the status that describes it
// (the inverse of Err, used by the wire-protocol server).
func StatusOf(err error) BroadcastStatus {
	switch {
	case err == nil:
		return StatusSuccess
	case errors.Is(err, ErrBadRequest), errors.Is(err, ErrBadSeek):
		return StatusBadRequest
	case errors.Is(err, ErrChannelNotFound), errors.Is(err, ErrPruned):
		return StatusNotFound
	}
	return StatusServiceUnavailable
}

// Broadcaster delivers an assembled envelope to the ordering service
// (protocol step 4) and reports the typed acknowledgement. The
// ordering-service frontend, the solo orderer, and the Kafka OSN implement
// it.
type Broadcaster interface {
	Broadcast(env *Envelope) BroadcastStatus
}

// Orderer is the full AtomicBroadcast surface: Broadcast plus a seekable
// Deliver. The wire-protocol server (internal/clientapi) serves any
// Orderer.
type Orderer interface {
	Broadcaster
	Deliver(channel string, seek SeekInfo) (*BlockStream, error)
}

// ---- SeekInfo ----------------------------------------------------------

// SeekKind selects the start position of a Deliver stream.
type SeekKind uint8

// Seek start positions.
const (
	// SeekNewest starts at the next block released after the call (the
	// live tail; the zero value, matching the pre-seek Deliver semantics).
	SeekNewest SeekKind = iota
	// SeekOldest starts at block 0, replaying the full chain from durable
	// storage before switching to the live stream.
	SeekOldest
	// SeekSpecified starts at SeekInfo.Start. A start past the current
	// head blocks until that block is sealed.
	SeekSpecified
)

func (k SeekKind) String() string {
	switch k {
	case SeekNewest:
		return "newest"
	case SeekOldest:
		return "oldest"
	case SeekSpecified:
		return "specified"
	}
	return "seek-" + strconv.Itoa(int(k))
}

// SeekInfo positions a Deliver stream: a start position and an optional
// inclusive stop. Without a stop the stream continues with live blocks
// until canceled.
type SeekInfo struct {
	// Kind is the start position.
	Kind SeekKind
	// Start is the first block number, meaningful with SeekSpecified.
	Start uint64
	// Stop is the last block delivered (inclusive) when HasStop is set;
	// the stream then closes with a nil error.
	Stop    uint64
	HasStop bool
}

// DeliverNewest seeks the live tail: every block released after the call.
func DeliverNewest() SeekInfo { return SeekInfo{Kind: SeekNewest} }

// DeliverOldest seeks block 0 and replays the full chain before tailing.
func DeliverOldest() SeekInfo { return SeekInfo{Kind: SeekOldest} }

// DeliverFrom seeks a specific block number.
func DeliverFrom(n uint64) SeekInfo { return SeekInfo{Kind: SeekSpecified, Start: n} }

// Through sets the inclusive stop position.
func (s SeekInfo) Through(n uint64) SeekInfo {
	s.Stop = n
	s.HasStop = true
	return s
}

// FirstNumber returns the first block number the seek requests (0 for
// Oldest and Newest; Newest resolves its true start only once the first
// live block arrives).
func (s SeekInfo) FirstNumber() uint64 {
	if s.Kind == SeekSpecified {
		return s.Start
	}
	return 0
}

// Validate rejects malformed seeks.
func (s SeekInfo) Validate() error {
	if s.Kind > SeekSpecified {
		return fmt.Errorf("%w: unknown seek kind %d", ErrBadRequest, s.Kind)
	}
	if s.HasStop && s.Stop < s.FirstNumber() {
		return ErrBadSeek
	}
	return nil
}

// MarshalInto appends the wire encoding of the seek.
//
// Layout: kind byte, uint64 start, bool hasStop, uint64 stop.
func (s SeekInfo) MarshalInto(w *wire.Writer) {
	w.PutByte(byte(s.Kind))
	w.PutUint64(s.Start)
	w.PutBool(s.HasStop)
	w.PutUint64(s.Stop)
}

// ReadSeekInfo decodes a seek written by MarshalInto.
func ReadSeekInfo(r *wire.Reader) SeekInfo {
	return SeekInfo{
		Kind:    SeekKind(r.Byte()),
		Start:   r.Uint64(),
		HasStop: r.Bool(),
		Stop:    r.Uint64(),
	}
}

// ---- BlockStream -------------------------------------------------------

// BlockStream is the consumer handle of a Deliver call: an ordered stream
// of blocks positioned by the SeekInfo, with no gaps or duplicates. The
// channel closes when the stop position was delivered, the stream was
// canceled, or the orderer shut down; Err then reports why (nil for a
// clean stop or cancel).
//
// Push and Close are the producer side, used by orderer implementations.
type BlockStream struct {
	c    chan *Block
	done chan struct{}

	cancelOnce sync.Once
	closeOnce  sync.Once
	err        error
}

// streamBuffer decouples the producer from a briefly slow consumer without
// hiding sustained backpressure (a stalled consumer blocks Push, which the
// producer converts into its own flow control).
const streamBuffer = 16

// NewBlockStream creates an open stream (producer side).
func NewBlockStream() *BlockStream {
	return &BlockStream{
		c:    make(chan *Block, streamBuffer),
		done: make(chan struct{}),
	}
}

// Blocks returns the ordered block channel.
func (s *BlockStream) Blocks() <-chan *Block { return s.c }

// Cancel stops the stream from the consumer side: the producer observes
// the cancellation on its next Push and closes the stream.
func (s *BlockStream) Cancel() {
	s.cancelOnce.Do(func() { close(s.done) })
}

// Err reports why the stream ended. Valid after Blocks() is closed.
func (s *BlockStream) Err() error { return s.err }

// Canceled returns a channel closed by Cancel (producer side).
func (s *BlockStream) Canceled() <-chan struct{} { return s.done }

// Push delivers one block to the consumer, blocking while the consumer is
// behind. It returns false once the stream was canceled.
func (s *BlockStream) Push(b *Block) bool {
	select {
	case <-s.done:
		return false
	default:
	}
	select {
	case s.c <- b:
		return true
	case <-s.done:
		return false
	}
}

// Close ends the stream with the given terminal error (nil for a clean
// stop). Idempotent; only the first call's error sticks.
func (s *BlockStream) Close(err error) {
	s.closeOnce.Do(func() {
		s.err = err
		close(s.c)
	})
}
