package fabric

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/cryptoutil"
)

func chainOf(t *testing.T, n int) []*Block {
	t.Helper()
	blocks := make([]*Block, n)
	prev := cryptoutil.Digest{}
	for i := range blocks {
		blocks[i] = NewBlock(uint64(i), prev, testEnvelopes(2))
		prev = blocks[i].Header.Hash()
	}
	return blocks
}

func TestLedgerAppendAndQuery(t *testing.T) {
	l := NewLedger()
	if l.Height() != 0 {
		t.Fatal("fresh ledger not empty")
	}
	for _, b := range chainOf(t, 3) {
		if err := l.Append(b); err != nil {
			t.Fatalf("append %d: %v", b.Header.Number, err)
		}
	}
	if l.Height() != 3 {
		t.Fatalf("height = %d", l.Height())
	}
	b, err := l.Block(1)
	if err != nil {
		t.Fatalf("block 1: %v", err)
	}
	if b.Header.Number != 1 {
		t.Fatalf("wrong block: %d", b.Header.Number)
	}
	if _, err := l.Block(9); !errors.Is(err, ErrBlockNotFound) {
		t.Fatalf("missing block error = %v", err)
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatalf("verify chain: %v", err)
	}
	if got := l.EnvelopeCount(); got != 6 {
		t.Fatalf("envelope count = %d, want 6", got)
	}
}

func TestLedgerRejectsOutOfSequence(t *testing.T) {
	l := NewLedger()
	blocks := chainOf(t, 3)
	if err := l.Append(blocks[1]); !errors.Is(err, ErrBlockNumber) {
		t.Fatalf("out-of-sequence append error = %v", err)
	}
	if err := l.Append(blocks[0]); err != nil {
		t.Fatalf("append genesis: %v", err)
	}
	if err := l.Append(blocks[0]); !errors.Is(err, ErrBlockNumber) {
		t.Fatalf("duplicate append error = %v", err)
	}
}

func TestLedgerRejectsBrokenChain(t *testing.T) {
	l := NewLedger()
	blocks := chainOf(t, 2)
	if err := l.Append(blocks[0]); err != nil {
		t.Fatalf("append: %v", err)
	}
	forged := NewBlock(1, cryptoutil.Hash([]byte("wrong")), testEnvelopes(1))
	if err := l.Append(forged); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("broken chain error = %v", err)
	}
	// Genesis with nonzero prev hash.
	l2 := NewLedger()
	badGenesis := NewBlock(0, cryptoutil.Hash([]byte("x")), testEnvelopes(1))
	if err := l2.Append(badGenesis); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("bad genesis error = %v", err)
	}
}

func TestLedgerRejectsTamperedData(t *testing.T) {
	l := NewLedger()
	b := chainOf(t, 1)[0]
	b.Envelopes[0][0] ^= 0xff
	if err := l.Append(b); err == nil {
		t.Fatal("tampered block accepted")
	}
}

func TestLedgerLastHash(t *testing.T) {
	l := NewLedger()
	if !l.LastHash().IsZero() {
		t.Fatal("empty ledger last hash not zero")
	}
	blocks := chainOf(t, 2)
	for _, b := range blocks {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if l.LastHash() != blocks[1].Header.Hash() {
		t.Fatal("last hash mismatch")
	}
}

func TestLedgerBlocksSlice(t *testing.T) {
	l := NewLedger()
	for _, b := range chainOf(t, 4) {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	tail := l.Blocks(2)
	if len(tail) != 2 || tail[0].Header.Number != 2 {
		t.Fatalf("Blocks(2) = %d blocks starting at %d", len(tail), tail[0].Header.Number)
	}
	if got := l.Blocks(99); got != nil {
		t.Fatalf("Blocks beyond height = %v", got)
	}
}

func TestLedgerConcurrentReaders(t *testing.T) {
	l := NewLedger()
	blocks := chainOf(t, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, b := range blocks {
			if err := l.Append(b); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h := l.Height()
				if h > 0 {
					if _, err := l.Block(h - 1); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
				l.LastHash()
			}
		}()
	}
	wg.Wait()
}
