package fabric

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestCutterCutsAtMaxEnvelopes(t *testing.T) {
	c := NewBlockCutter(CutterConfig{MaxEnvelopes: 3})
	if got := c.Append([]byte("a")); got != nil {
		t.Fatal("premature cut")
	}
	if got := c.Append([]byte("b")); got != nil {
		t.Fatal("premature cut")
	}
	batch := c.Append([]byte("c"))
	if len(batch) != 3 {
		t.Fatalf("cut size = %d, want 3", len(batch))
	}
	if c.Pending() != 0 {
		t.Fatalf("pending after cut = %d", c.Pending())
	}
}

func TestCutterCutsAtMaxBytes(t *testing.T) {
	c := NewBlockCutter(CutterConfig{MaxEnvelopes: 100, MaxBytes: 10})
	if got := c.Append(make([]byte, 4)); got != nil {
		t.Fatal("premature cut")
	}
	batch := c.Append(make([]byte, 8))
	if len(batch) != 2 {
		t.Fatalf("cut size = %d, want 2", len(batch))
	}
	if c.PendingBytes() != 0 {
		t.Fatalf("pending bytes after cut = %d", c.PendingBytes())
	}
}

func TestCutterManualCut(t *testing.T) {
	c := NewBlockCutter(CutterConfig{MaxEnvelopes: 10})
	if got := c.Cut(); got != nil {
		t.Fatal("cut of empty cutter returned a batch")
	}
	c.Append([]byte("x"))
	batch := c.Cut()
	if len(batch) != 1 || string(batch[0]) != "x" {
		t.Fatalf("manual cut = %v", batch)
	}
}

func TestCutterTimeout(t *testing.T) {
	c := NewBlockCutter(CutterConfig{MaxEnvelopes: 10, Timeout: 10 * time.Millisecond})
	c.Append([]byte("x"))
	if got := c.CutIfExpired(time.Now()); got != nil {
		t.Fatal("cut before timeout")
	}
	if got := c.CutIfExpired(time.Now().Add(20 * time.Millisecond)); len(got) != 1 {
		t.Fatalf("timeout cut = %v", got)
	}
	// No timeout configured: never cuts.
	c2 := NewBlockCutter(CutterConfig{MaxEnvelopes: 10})
	c2.Append([]byte("x"))
	if got := c2.CutIfExpired(time.Now().Add(time.Hour)); got != nil {
		t.Fatal("cut without configured timeout")
	}
}

func TestCutterDefaults(t *testing.T) {
	c := NewBlockCutter(CutterConfig{})
	for i := 0; i < 9; i++ {
		if got := c.Append([]byte{byte(i)}); got != nil {
			t.Fatalf("premature cut at %d", i)
		}
	}
	if got := c.Append([]byte{9}); len(got) != 10 {
		t.Fatalf("default block size = %d, want 10", len(got))
	}
}

func TestCutterPreservesOrderAndContent(t *testing.T) {
	f := func(raw [][]byte, sizeRaw uint8) bool {
		size := int(sizeRaw%20) + 1
		c := NewBlockCutter(CutterConfig{MaxEnvelopes: size})
		var batches [][][]byte
		for _, env := range raw {
			if batch := c.Append(env); batch != nil {
				batches = append(batches, batch)
			}
		}
		if final := c.Cut(); final != nil {
			batches = append(batches, final)
		}
		// Invariants: no batch exceeds the size bound; concatenating the
		// batches reproduces the input exactly.
		var flat [][]byte
		for _, b := range batches {
			if len(b) > size {
				return false
			}
			flat = append(flat, b...)
		}
		if len(flat) != len(raw) {
			return false
		}
		for i := range raw {
			if !bytes.Equal(flat[i], raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
