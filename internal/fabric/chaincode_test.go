package fabric

import (
	"bytes"
	"testing"
)

func TestPolicyTOutOfN(t *testing.T) {
	p, err := NewTOutOfN(2, "p0", "p1", "p2")
	if err != nil {
		t.Fatalf("NewTOutOfN: %v", err)
	}
	if !p.Satisfied([]string{"p0", "p2"}) {
		t.Fatal("2 of 3 rejected")
	}
	if p.Satisfied([]string{"p0"}) {
		t.Fatal("1 of 3 accepted")
	}
	if p.Satisfied([]string{"p0", "p0"}) {
		t.Fatal("duplicate endorser counted twice")
	}
	if p.Satisfied([]string{"intruder", "other"}) {
		t.Fatal("unknown endorsers accepted")
	}
	if !p.Satisfied([]string{"intruder", "p1", "p0"}) {
		t.Fatal("extra unknown endorser poisoned a valid set")
	}
	if p.String() != "2-of(p0,p1,p2)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPolicyConstructors(t *testing.T) {
	all, err := NewAllOf("a", "b")
	if err != nil {
		t.Fatalf("NewAllOf: %v", err)
	}
	if all.Satisfied([]string{"a"}) || !all.Satisfied([]string{"a", "b"}) {
		t.Fatal("AllOf misbehaves")
	}
	anyP, err := NewAnyOf("a", "b")
	if err != nil {
		t.Fatalf("NewAnyOf: %v", err)
	}
	if !anyP.Satisfied([]string{"b"}) {
		t.Fatal("AnyOf misbehaves")
	}
	if _, err := NewTOutOfN(0, "a"); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := NewTOutOfN(3, "a", "b"); err == nil {
		t.Fatal("t>n accepted")
	}
	if _, err := NewTOutOfN(1); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewTOutOfN(1, "a", "a"); err == nil {
		t.Fatal("duplicate peers accepted")
	}
}

func TestSimStubReadsRecordVersions(t *testing.T) {
	db := NewStateDB()
	db.ApplyWrites([]KVWrite{{Key: "k", Value: []byte("v")}}, Version{BlockNum: 5, TxNum: 2})
	stub := newSimStub(db)

	got, err := stub.GetState("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("GetState = %q, %v", got, err)
	}
	if _, err := stub.GetState("absent"); err != nil {
		t.Fatalf("GetState absent: %v", err)
	}
	// Re-reading the same key records it once.
	if _, err := stub.GetState("k"); err != nil {
		t.Fatalf("GetState again: %v", err)
	}
	rw := stub.rwset()
	if len(rw.Reads) != 2 {
		t.Fatalf("reads = %+v", rw.Reads)
	}
	if rw.Reads[0].Key != "k" || rw.Reads[0].Version != (Version{BlockNum: 5, TxNum: 2}) || !rw.Reads[0].Exists {
		t.Fatalf("read record wrong: %+v", rw.Reads[0])
	}
	if rw.Reads[1].Key != "absent" || rw.Reads[1].Exists {
		t.Fatalf("absent read record wrong: %+v", rw.Reads[1])
	}
}

func TestSimStubReadYourWrites(t *testing.T) {
	db := NewStateDB()
	db.ApplyWrites([]KVWrite{{Key: "k", Value: []byte("old")}}, Version{BlockNum: 1})
	stub := newSimStub(db)

	if err := stub.PutState("k", []byte("new")); err != nil {
		t.Fatalf("PutState: %v", err)
	}
	got, err := stub.GetState("k")
	if err != nil || string(got) != "new" {
		t.Fatalf("read-your-writes = %q, %v", got, err)
	}
	if err := stub.DelState("k"); err != nil {
		t.Fatalf("DelState: %v", err)
	}
	got, err = stub.GetState("k")
	if err != nil || got != nil {
		t.Fatalf("read after delete = %q, %v", got, err)
	}
	rw := stub.rwset()
	// A written-then-read key must not appear in the read set (it was
	// never read from committed state).
	if len(rw.Reads) != 0 {
		t.Fatalf("reads of own writes recorded: %+v", rw.Reads)
	}
	// The last write per key wins.
	if len(rw.Writes) != 1 || !rw.Writes[0].Delete {
		t.Fatalf("writes = %+v", rw.Writes)
	}
	// The database itself was never touched.
	got2, _ := db.Get("k")
	if string(got2.Value) != "old" {
		t.Fatal("simulation mutated the state database")
	}
}

func TestKVChaincode(t *testing.T) {
	db := NewStateDB()
	cc := KVChaincode{}

	stub := newSimStub(db)
	resp, err := cc.Invoke(stub, "put", [][]byte{[]byte("k"), []byte("v")})
	if err != nil || string(resp) != "ok" {
		t.Fatalf("put: %q, %v", resp, err)
	}
	db.ApplyWrites(stub.rwset().Writes, Version{BlockNum: 1})

	stub = newSimStub(db)
	resp, err = cc.Invoke(stub, "get", [][]byte{[]byte("k")})
	if err != nil || string(resp) != "v" {
		t.Fatalf("get: %q, %v", resp, err)
	}

	stub = newSimStub(db)
	if _, err := cc.Invoke(stub, "del", [][]byte{[]byte("k")}); err != nil {
		t.Fatalf("del: %v", err)
	}
	if _, err := cc.Invoke(stub, "nope", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := cc.Invoke(stub, "put", [][]byte{[]byte("k")}); err == nil {
		t.Fatal("bad arity accepted")
	}
}

func TestAssetChaincode(t *testing.T) {
	db := NewStateDB()
	cc := AssetChaincode{}

	stub := newSimStub(db)
	if _, err := cc.Invoke(stub, "create", [][]byte{[]byte("car1"), []byte("alice")}); err != nil {
		t.Fatalf("create: %v", err)
	}
	db.ApplyWrites(stub.rwset().Writes, Version{BlockNum: 1})

	// Double-create fails.
	stub = newSimStub(db)
	if _, err := cc.Invoke(stub, "create", [][]byte{[]byte("car1"), []byte("bob")}); err == nil {
		t.Fatal("double create accepted")
	}

	stub = newSimStub(db)
	prev, err := cc.Invoke(stub, "transfer", [][]byte{[]byte("car1"), []byte("bob")})
	if err != nil || string(prev) != "alice" {
		t.Fatalf("transfer: %q, %v", prev, err)
	}
	db.ApplyWrites(stub.rwset().Writes, Version{BlockNum: 2})

	stub = newSimStub(db)
	owner, err := cc.Invoke(stub, "owner", [][]byte{[]byte("car1")})
	if err != nil || string(owner) != "bob" {
		t.Fatalf("owner: %q, %v", owner, err)
	}

	stub = newSimStub(db)
	if _, err := cc.Invoke(stub, "transfer", [][]byte{[]byte("ghost"), []byte("x")}); err == nil {
		t.Fatal("transfer of missing asset accepted")
	}
}

func TestBankChaincode(t *testing.T) {
	db := NewStateDB()
	cc := BankChaincode{}
	commit := func(stub *simStub, block uint64) {
		db.ApplyWrites(stub.rwset().Writes, Version{BlockNum: block})
	}

	stub := newSimStub(db)
	if _, err := cc.Invoke(stub, "open", [][]byte{[]byte("alice"), []byte("100")}); err != nil {
		t.Fatalf("open: %v", err)
	}
	commit(stub, 1)
	stub = newSimStub(db)
	if _, err := cc.Invoke(stub, "open", [][]byte{[]byte("bob"), []byte("50")}); err != nil {
		t.Fatalf("open: %v", err)
	}
	commit(stub, 2)

	stub = newSimStub(db)
	if _, err := cc.Invoke(stub, "transfer", [][]byte{[]byte("alice"), []byte("bob"), []byte("30")}); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	commit(stub, 3)

	check := func(acct, want string) {
		t.Helper()
		stub := newSimStub(db)
		got, err := cc.Invoke(stub, "balance", [][]byte{[]byte(acct)})
		if err != nil || !bytes.Equal(got, []byte(want)) {
			t.Fatalf("balance(%s) = %q, %v; want %q", acct, got, err, want)
		}
	}
	check("alice", "70")
	check("bob", "80")

	// Overdraft rejected.
	stub = newSimStub(db)
	if _, err := cc.Invoke(stub, "transfer", [][]byte{[]byte("alice"), []byte("bob"), []byte("1000")}); err == nil {
		t.Fatal("overdraft accepted")
	}
	// Bad amount rejected.
	stub = newSimStub(db)
	if _, err := cc.Invoke(stub, "transfer", [][]byte{[]byte("alice"), []byte("bob"), []byte("-5")}); err == nil {
		t.Fatal("negative amount accepted")
	}
	// Missing account rejected.
	stub = newSimStub(db)
	if _, err := cc.Invoke(stub, "balance", [][]byte{[]byte("carol")}); err == nil {
		t.Fatal("missing account accepted")
	}
}
