package fabric

import (
	"fmt"
	"sort"
	"strings"
)

// Policy is an endorsement policy: a predicate over the set of peers whose
// endorsements verified. Clients check policies before assembling a
// transaction (protocol step 3) and committing peers re-check them during
// validation (step 5).
type Policy interface {
	// Satisfied reports whether the given endorsing peers fulfil the
	// policy.
	Satisfied(endorsers []string) bool
	// String renders the policy for documentation and errors.
	String() string
}

// tOutOfN requires endorsements from at least T of the listed peers.
type tOutOfN struct {
	t     int
	peers map[string]bool
	names []string
}

// NewTOutOfN builds a "t out of the listed peers" policy. t must be between
// 1 and the number of peers.
func NewTOutOfN(t int, peers ...string) (Policy, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("policy: no peers")
	}
	if t < 1 || t > len(peers) {
		return nil, fmt.Errorf("policy: t=%d out of range for %d peers", t, len(peers))
	}
	set := make(map[string]bool, len(peers))
	for _, p := range peers {
		if set[p] {
			return nil, fmt.Errorf("policy: duplicate peer %q", p)
		}
		set[p] = true
	}
	names := make([]string, len(peers))
	copy(names, peers)
	sort.Strings(names)
	return &tOutOfN{t: t, peers: set, names: names}, nil
}

// NewAllOf requires every listed peer.
func NewAllOf(peers ...string) (Policy, error) {
	return NewTOutOfN(len(peers), peers...)
}

// NewAnyOf requires any one of the listed peers.
func NewAnyOf(peers ...string) (Policy, error) {
	return NewTOutOfN(1, peers...)
}

var _ Policy = (*tOutOfN)(nil)

func (p *tOutOfN) Satisfied(endorsers []string) bool {
	seen := make(map[string]bool, len(endorsers))
	count := 0
	for _, e := range endorsers {
		if seen[e] || !p.peers[e] {
			continue
		}
		seen[e] = true
		count++
	}
	return count >= p.t
}

func (p *tOutOfN) String() string {
	return fmt.Sprintf("%d-of(%s)", p.t, strings.Join(p.names, ","))
}
