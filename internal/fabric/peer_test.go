package fabric

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// fabricNet bundles endorsers, a committing peer, and a loopback orderer
// (cut a block per envelope, commit immediately) for tests that exercise
// the full six-step flow without the BFT ordering service.
type fabricNet struct {
	t         *testing.T
	registry  *cryptoutil.Registry
	endorsers []*Endorser
	peer      *Peer
	clientKey *cryptoutil.KeyPair

	mu     sync.Mutex
	cutter *BlockCutter
}

func newFabricNet(t *testing.T, nEndorsers, blockSize int) *fabricNet {
	t.Helper()
	registry := cryptoutil.NewRegistry()

	peerNames := make([]string, nEndorsers)
	for i := range peerNames {
		peerNames[i] = "peer" + string(rune('0'+i))
	}
	policy, err := NewTOutOfN((nEndorsers+1)/2+1, peerNames...)
	if err != nil {
		// Fall back for tiny endorser sets.
		policy, err = NewAnyOf(peerNames...)
		if err != nil {
			t.Fatalf("policy: %v", err)
		}
	}
	peer, err := NewPeer(PeerConfig{
		ID:       "committer",
		Registry: registry,
		Policies: map[string]Policy{
			"kv": policy, "asset": policy, "bank": policy,
		},
	})
	if err != nil {
		t.Fatalf("peer: %v", err)
	}

	// As in a real Fabric network, the endorsing side simulates against
	// the committed state of the peer.
	endorsers := make([]*Endorser, nEndorsers)
	for i := range endorsers {
		kp, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		registry.Register(peerNames[i], kp.Public())
		e, err := NewEndorser(peerNames[i], kp, peer.StateDB())
		if err != nil {
			t.Fatalf("endorser: %v", err)
		}
		e.Install(KVChaincode{})
		e.Install(AssetChaincode{})
		e.Install(BankChaincode{})
		endorsers[i] = e
	}

	clientKey, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	return &fabricNet{
		t:         t,
		registry:  registry,
		endorsers: endorsers,
		peer:      peer,
		clientKey: clientKey,
		cutter:    NewBlockCutter(CutterConfig{MaxEnvelopes: blockSize}),
	}
}

// Broadcast implements Broadcaster: it cuts size-1 blocks and commits them
// to the peer, emulating the ordering service synchronously. Note that the
// endorsers simulate against the committing peer's live state because the
// test shares one StateDB... except it does not: endorsers got their own db
// in newFabricNet. See sharedStateNet for the MVCC scenarios.
func (fn *fabricNet) Broadcast(env *Envelope) BroadcastStatus {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	batch := fn.cutter.Append(env.Marshal())
	if batch == nil {
		return StatusSuccess
	}
	block := NewBlock(fn.peer.Ledger().Height(), fn.peer.Ledger().LastHash(), batch)
	if _, err := fn.peer.CommitBlock(block); err != nil {
		return StatusServiceUnavailable
	}
	return StatusSuccess
}

func (fn *fabricNet) client(policy Policy) *Client {
	fn.t.Helper()
	if policy == nil {
		names := make([]string, len(fn.endorsers))
		for i, e := range fn.endorsers {
			names[i] = e.ID()
		}
		var err error
		policy, err = NewTOutOfN((len(names)+1)/2+1, names...)
		if err != nil {
			policy, _ = NewAnyOf(names...)
		}
	}
	c, err := NewClient(ClientConfig{
		ID:        "app-client",
		Key:       fn.clientKey,
		ChannelID: "ch1",
		Endorsers: fn.endorsers,
		Policy:    policy,
		Orderer:   fn,
		Committer: fn.peer,
	})
	if err != nil {
		fn.t.Fatalf("client: %v", err)
	}
	return c
}

func TestEndorserProcessProposal(t *testing.T) {
	fn := newFabricNet(t, 1, 1)
	resp, err := fn.endorsers[0].ProcessProposal(&Proposal{
		TxID: "tx1", ChaincodeID: "kv", Fn: "put",
		Args: [][]byte{[]byte("k"), []byte("v")},
	})
	if err != nil {
		t.Fatalf("ProcessProposal: %v", err)
	}
	if len(resp.RWSet.Writes) != 1 || resp.RWSet.Writes[0].Key != "k" {
		t.Fatalf("writes = %+v", resp.RWSet.Writes)
	}
	tx := &Transaction{TxID: "tx1", ChaincodeID: "kv", RWSet: resp.RWSet, Response: resp.Response}
	if !fn.registry.Verify(resp.PeerID, tx.ResponseDigest().Bytes(), resp.Endorsement.Signature) {
		t.Fatal("endorsement signature does not verify")
	}
	// Unknown chaincode and missing tx id fail.
	if _, err := fn.endorsers[0].ProcessProposal(&Proposal{TxID: "t", ChaincodeID: "nope"}); err == nil {
		t.Fatal("unknown chaincode accepted")
	}
	if _, err := fn.endorsers[0].ProcessProposal(&Proposal{ChaincodeID: "kv"}); err == nil {
		t.Fatal("missing tx id accepted")
	}
}

func TestFullFlowCommit(t *testing.T) {
	fn := newFabricNet(t, 3, 1)
	client := fn.client(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	res, err := client.Submit(ctx, "kv", "put", [][]byte{[]byte("name"), []byte("fabric")})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Code != TxValid {
		t.Fatalf("validation code = %v", res.Code)
	}
	got, ok := fn.peer.StateDB().Get("name")
	if !ok || string(got.Value) != "fabric" {
		t.Fatalf("state after commit = %+v, %v", got, ok)
	}
	if fn.peer.Ledger().Height() != 1 {
		t.Fatalf("ledger height = %d", fn.peer.Ledger().Height())
	}
	if err := fn.peer.Ledger().VerifyChain(); err != nil {
		t.Fatalf("chain verify: %v", err)
	}
}

func TestFullFlowSequential(t *testing.T) {
	fn := newFabricNet(t, 3, 1)
	client := fn.client(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := client.Submit(ctx, "bank", "open", [][]byte{[]byte("alice"), []byte("100")}); err != nil {
		t.Fatalf("open alice: %v", err)
	}
	if _, err := client.Submit(ctx, "bank", "open", [][]byte{[]byte("bob"), []byte("10")}); err != nil {
		t.Fatalf("open bob: %v", err)
	}
	res, err := client.Submit(ctx, "bank", "transfer",
		[][]byte{[]byte("alice"), []byte("bob"), []byte("25")})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if res.Code != TxValid {
		t.Fatalf("transfer marked %v", res.Code)
	}
	got, _ := fn.peer.StateDB().Get("acct:bob")
	if string(got.Value) != "35" {
		t.Fatalf("bob balance = %q", got.Value)
	}
}

func TestEndorsementPolicyFailureDetected(t *testing.T) {
	fn := newFabricNet(t, 3, 1)
	// The committing peer requires 3 endorsements, but the client only
	// collects from one endorser; client-side check passes (AnyOf), the
	// peer marks the transaction invalid.
	strict, err := NewAllOf("peer0", "peer1", "peer2")
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	fn.peer.cfg.Policies["kv"] = strict
	anyOf, err := NewAnyOf("peer0")
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	client, err := NewClient(ClientConfig{
		ID: "weak-client", Key: fn.clientKey, ChannelID: "ch1",
		Endorsers: fn.endorsers[:1], Policy: anyOf,
		Orderer: fn, Committer: fn.peer,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := client.Submit(ctx, "kv", "put", [][]byte{[]byte("k"), []byte("v")})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if res.Code != TxEndorsementPolicyFailure {
		t.Fatalf("code = %v, want policy failure", res.Code)
	}
	// Invalid transaction is recorded in the ledger but not applied.
	if fn.peer.Ledger().Height() != 1 {
		t.Fatal("invalid tx not recorded in ledger")
	}
	if _, ok := fn.peer.StateDB().Get("k"); ok {
		t.Fatal("invalid tx mutated state")
	}
}

func TestForgedEndorsementRejected(t *testing.T) {
	fn := newFabricNet(t, 3, 1)
	// Build a transaction with fabricated endorsements.
	tx := &Transaction{
		TxID: "forged", ChaincodeID: "kv",
		RWSet:    RWSet{Writes: []KVWrite{{Key: "k", Value: []byte("evil")}}},
		Response: []byte("ok"),
		Endorsements: []Endorsement{
			{PeerID: "peer0", Signature: []byte("fake")},
			{PeerID: "peer1", Signature: []byte("fake")},
			{PeerID: "peer2", Signature: []byte("fake")},
		},
	}
	env := &Envelope{ChannelID: "ch1", ClientID: "attacker", Payload: tx.Marshal()}
	block := NewBlock(0, cryptoutil.Digest{}, [][]byte{env.Marshal()})
	result, err := fn.peer.CommitBlock(block)
	if err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	if result.Codes[0] != TxEndorsementPolicyFailure {
		t.Fatalf("forged endorsements validated: %v", result.Codes[0])
	}
	if _, ok := fn.peer.StateDB().Get("k"); ok {
		t.Fatal("forged tx mutated state")
	}
}

func TestMVCCConflictWithinBlock(t *testing.T) {
	fn := newFabricNet(t, 1, 2) // blocks of 2: both txs land in one block
	anyOf, err := NewAnyOf("peer0")
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	fn.peer.cfg.Policies["kv"] = anyOf

	// Two transactions read the same key version and both write it: the
	// first is valid, the second must be an MVCC conflict.
	mkEnv := func(txID string) []byte {
		resp, err := fn.endorsers[0].ProcessProposal(&Proposal{
			TxID: txID, ChaincodeID: "kv", Fn: "get", Args: [][]byte{[]byte("shared")},
		})
		if err != nil {
			t.Fatalf("endorse: %v", err)
		}
		tx := &Transaction{
			TxID: txID, ChaincodeID: "kv",
			RWSet: RWSet{
				Reads:  resp.RWSet.Reads,
				Writes: []KVWrite{{Key: "shared", Value: []byte(txID)}},
			},
			Response: resp.Response,
		}
		// Re-sign with the extended write set.
		sig, err := fn.endorsers[0].key.SignDigest(tx.ResponseDigest())
		if err != nil {
			t.Fatalf("sign: %v", err)
		}
		tx.Endorsements = []Endorsement{{PeerID: "peer0", Signature: sig}}
		env := &Envelope{ChannelID: "ch1", ClientID: "c", Payload: tx.Marshal()}
		return env.Marshal()
	}

	block := NewBlock(0, cryptoutil.Digest{}, [][]byte{mkEnv("tx-a"), mkEnv("tx-b")})
	result, err := fn.peer.CommitBlock(block)
	if err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	if result.Codes[0] != TxValid {
		t.Fatalf("first tx = %v, want valid", result.Codes[0])
	}
	if result.Codes[1] != TxMVCCConflict {
		t.Fatalf("second tx = %v, want MVCC conflict", result.Codes[1])
	}
	got, _ := fn.peer.StateDB().Get("shared")
	if string(got.Value) != "tx-a" {
		t.Fatalf("state = %q, want tx-a", got.Value)
	}
}

func TestMVCCStaleReadAcrossBlocks(t *testing.T) {
	fn := newFabricNet(t, 1, 1)
	anyOf, err := NewAnyOf("peer0")
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	fn.peer.cfg.Policies["kv"] = anyOf

	// Endorse a read of key "x" (absent), then commit an unrelated write
	// of "x" first: the stale read set must be rejected.
	resp, err := fn.endorsers[0].ProcessProposal(&Proposal{
		TxID: "stale", ChaincodeID: "kv", Fn: "get", Args: [][]byte{[]byte("x")},
	})
	if err != nil {
		t.Fatalf("endorse: %v", err)
	}
	staleTx := &Transaction{
		TxID: "stale", ChaincodeID: "kv",
		RWSet: RWSet{Reads: resp.RWSet.Reads,
			Writes: []KVWrite{{Key: "y", Value: []byte("1")}}},
		Response: resp.Response,
	}
	sig, err := fn.endorsers[0].key.SignDigest(staleTx.ResponseDigest())
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	staleTx.Endorsements = []Endorsement{{PeerID: "peer0", Signature: sig}}

	// Interleaving write to "x" committed first.
	writeTx := &Transaction{
		TxID: "writer", ChaincodeID: "kv",
		RWSet:    RWSet{Writes: []KVWrite{{Key: "x", Value: []byte("now-set")}}},
		Response: []byte("ok"),
	}
	sig2, err := fn.endorsers[0].key.SignDigest(writeTx.ResponseDigest())
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	writeTx.Endorsements = []Endorsement{{PeerID: "peer0", Signature: sig2}}

	envW := &Envelope{ChannelID: "ch1", ClientID: "c", Payload: writeTx.Marshal()}
	b0 := NewBlock(0, cryptoutil.Digest{}, [][]byte{envW.Marshal()})
	if _, err := fn.peer.CommitBlock(b0); err != nil {
		t.Fatalf("commit b0: %v", err)
	}

	envS := &Envelope{ChannelID: "ch1", ClientID: "c", Payload: staleTx.Marshal()}
	b1 := NewBlock(1, b0.Header.Hash(), [][]byte{envS.Marshal()})
	result, err := fn.peer.CommitBlock(b1)
	if err != nil {
		t.Fatalf("commit b1: %v", err)
	}
	if result.Codes[0] != TxMVCCConflict {
		t.Fatalf("stale read = %v, want MVCC conflict", result.Codes[0])
	}
}

func TestBadEnvelopeAndPayloadCodes(t *testing.T) {
	fn := newFabricNet(t, 1, 1)
	badEnv := [][]byte{{0xff, 0xee}}
	b0 := NewBlock(0, cryptoutil.Digest{}, badEnv)
	res, err := fn.peer.CommitBlock(b0)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if res.Codes[0] != TxBadEnvelope {
		t.Fatalf("code = %v, want bad envelope", res.Codes[0])
	}

	env := &Envelope{ChannelID: "ch1", ClientID: "c", Payload: []byte("not a tx")}
	b1 := NewBlock(1, b0.Header.Hash(), [][]byte{env.Marshal()})
	res, err = fn.peer.CommitBlock(b1)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if res.Codes[0] != TxBadPayload {
		t.Fatalf("code = %v, want bad payload", res.Codes[0])
	}
}

func TestPeerDeterminism(t *testing.T) {
	// Two peers processing the same chain finish with identical state
	// hashes (Section 3: validation is deterministic).
	fnA := newFabricNet(t, 3, 1)
	mk := func() (*Peer, error) {
		return NewPeer(PeerConfig{
			ID:       "peer-b",
			Registry: fnA.registry,
			Policies: fnA.peer.cfg.Policies,
		})
	}
	peerB, err := mk()
	if err != nil {
		t.Fatalf("peer: %v", err)
	}
	client := fnA.client(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		key := []byte{byte('a' + i)}
		if _, err := client.Submit(ctx, "kv", "put", [][]byte{key, key}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for _, b := range fnA.peer.Ledger().Blocks(0) {
		if _, err := peerB.CommitBlock(b); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	if fnA.peer.StateDB().Hash() != peerB.StateDB().Hash() {
		t.Fatal("peers diverged on identical chains")
	}
}

func TestClientValidation(t *testing.T) {
	fn := newFabricNet(t, 1, 1)
	anyOf, err := NewAnyOf("peer0")
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	base := ClientConfig{
		ID: "c", Key: fn.clientKey, ChannelID: "ch1",
		Endorsers: fn.endorsers, Policy: anyOf,
		Orderer: fn, Committer: fn.peer,
	}
	bad := base
	bad.ID = ""
	if _, err := NewClient(bad); err == nil {
		t.Error("empty id accepted")
	}
	bad = base
	bad.Key = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("nil key accepted")
	}
	bad = base
	bad.Endorsers = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("no endorsers accepted")
	}
	bad = base
	bad.Orderer = nil
	if _, err := NewClient(bad); err == nil {
		t.Error("nil orderer accepted")
	}
}

func TestSubmitContextCancel(t *testing.T) {
	fn := newFabricNet(t, 1, 10) // block size 10: a single tx never commits
	anyOf, err := NewAnyOf("peer0")
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	client, err := NewClient(ClientConfig{
		ID: "c", Key: fn.clientKey, ChannelID: "ch1",
		Endorsers: fn.endorsers, Policy: anyOf,
		Orderer: fn, Committer: fn.peer,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = client.Submit(ctx, "kv", "put", [][]byte{[]byte("k"), []byte("v")})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit error = %v, want deadline exceeded", err)
	}
}
