package fabric

import (
	"errors"
	"fmt"
	"strconv"
)

// Chaincode is HLF's smart contract abstraction (Section 3). Invocations run
// against a Stub that records every state access into a read/write set;
// execution during endorsement never mutates the ledger (step 2 of the
// protocol: "No updates are made to the ledger at this point").
type Chaincode interface {
	// Name returns the chaincode id.
	Name() string
	// Invoke executes a function with arguments against the stub and
	// returns the chaincode response.
	Invoke(stub Stub, fn string, args [][]byte) ([]byte, error)
}

// Stub is the chaincode's view of the state during simulation.
type Stub interface {
	// GetState reads a key (nil, nil when absent).
	GetState(key string) ([]byte, error)
	// PutState buffers a write.
	PutState(key string, value []byte) error
	// DelState buffers a deletion.
	DelState(key string) error
}

// simStub simulates against a StateDB, recording reads (with versions) and
// buffering writes, with read-your-writes semantics within the simulation.
type simStub struct {
	db     *StateDB
	reads  []KVRead
	readKs map[string]bool
	writes []KVWrite
	wIndex map[string]int // key -> index into writes
}

var _ Stub = (*simStub)(nil)

func newSimStub(db *StateDB) *simStub {
	return &simStub{
		db:     db,
		readKs: make(map[string]bool),
		wIndex: make(map[string]int),
	}
}

func (s *simStub) GetState(key string) ([]byte, error) {
	// Read-your-writes: a value written earlier in this simulation wins.
	if idx, ok := s.wIndex[key]; ok {
		w := s.writes[idx]
		if w.Delete {
			return nil, nil
		}
		return append([]byte(nil), w.Value...), nil
	}
	v, exists := s.db.Get(key)
	if !s.readKs[key] {
		s.readKs[key] = true
		s.reads = append(s.reads, KVRead{Key: key, Version: v.Version, Exists: exists})
	}
	if !exists {
		return nil, nil
	}
	return v.Value, nil
}

func (s *simStub) PutState(key string, value []byte) error {
	s.record(KVWrite{Key: key, Value: append([]byte(nil), value...)})
	return nil
}

func (s *simStub) DelState(key string) error {
	s.record(KVWrite{Key: key, Delete: true})
	return nil
}

func (s *simStub) record(w KVWrite) {
	if idx, ok := s.wIndex[w.Key]; ok {
		s.writes[idx] = w
		return
	}
	s.wIndex[w.Key] = len(s.writes)
	s.writes = append(s.writes, w)
}

func (s *simStub) rwset() RWSet {
	return RWSet{Reads: s.reads, Writes: s.writes}
}

// ---- Sample chaincodes -------------------------------------------------

// KVChaincode is a plain key/value store: put(k,v), get(k), del(k).
type KVChaincode struct{}

var _ Chaincode = KVChaincode{}

// Name implements Chaincode.
func (KVChaincode) Name() string { return "kv" }

// Invoke implements Chaincode.
func (KVChaincode) Invoke(stub Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "put":
		if len(args) != 2 {
			return nil, errors.New("kv put: want key and value")
		}
		if err := stub.PutState(string(args[0]), args[1]); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case "get":
		if len(args) != 1 {
			return nil, errors.New("kv get: want key")
		}
		return stub.GetState(string(args[0]))
	case "del":
		if len(args) != 1 {
			return nil, errors.New("kv del: want key")
		}
		if err := stub.DelState(string(args[0])); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	default:
		return nil, fmt.Errorf("kv: unknown function %q", fn)
	}
}

// AssetChaincode manages ownable assets: create(id,owner), transfer(id,to),
// owner(id). It is the kind of business workload HLF's introduction
// motivates.
type AssetChaincode struct{}

var _ Chaincode = AssetChaincode{}

// Name implements Chaincode.
func (AssetChaincode) Name() string { return "asset" }

// Invoke implements Chaincode.
func (AssetChaincode) Invoke(stub Stub, fn string, args [][]byte) ([]byte, error) {
	key := func(id []byte) string { return "asset:" + string(id) }
	switch fn {
	case "create":
		if len(args) != 2 {
			return nil, errors.New("asset create: want id and owner")
		}
		existing, err := stub.GetState(key(args[0]))
		if err != nil {
			return nil, err
		}
		if existing != nil {
			return nil, fmt.Errorf("asset %q already exists", args[0])
		}
		if err := stub.PutState(key(args[0]), args[1]); err != nil {
			return nil, err
		}
		return []byte("created"), nil
	case "transfer":
		if len(args) != 2 {
			return nil, errors.New("asset transfer: want id and new owner")
		}
		owner, err := stub.GetState(key(args[0]))
		if err != nil {
			return nil, err
		}
		if owner == nil {
			return nil, fmt.Errorf("asset %q does not exist", args[0])
		}
		if err := stub.PutState(key(args[0]), args[1]); err != nil {
			return nil, err
		}
		return owner, nil // previous owner
	case "owner":
		if len(args) != 1 {
			return nil, errors.New("asset owner: want id")
		}
		return stub.GetState(key(args[0]))
	default:
		return nil, fmt.Errorf("asset: unknown function %q", fn)
	}
}

// BankChaincode is a small-bank style payment workload: open(acct,balance),
// transfer(from,to,amount), balance(acct).
type BankChaincode struct{}

var _ Chaincode = BankChaincode{}

// Name implements Chaincode.
func (BankChaincode) Name() string { return "bank" }

// Invoke implements Chaincode.
func (BankChaincode) Invoke(stub Stub, fn string, args [][]byte) ([]byte, error) {
	key := func(acct []byte) string { return "acct:" + string(acct) }
	readBalance := func(acct []byte) (int64, error) {
		raw, err := stub.GetState(key(acct))
		if err != nil {
			return 0, err
		}
		if raw == nil {
			return 0, fmt.Errorf("account %q does not exist", acct)
		}
		return strconv.ParseInt(string(raw), 10, 64)
	}
	writeBalance := func(acct []byte, amount int64) error {
		return stub.PutState(key(acct), []byte(strconv.FormatInt(amount, 10)))
	}
	switch fn {
	case "open":
		if len(args) != 2 {
			return nil, errors.New("bank open: want account and balance")
		}
		initial, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil || initial < 0 {
			return nil, fmt.Errorf("bank open: bad balance %q", args[1])
		}
		if err := writeBalance(args[0], initial); err != nil {
			return nil, err
		}
		return []byte("opened"), nil
	case "transfer":
		if len(args) != 3 {
			return nil, errors.New("bank transfer: want from, to, amount")
		}
		amount, err := strconv.ParseInt(string(args[2]), 10, 64)
		if err != nil || amount <= 0 {
			return nil, fmt.Errorf("bank transfer: bad amount %q", args[2])
		}
		from, err := readBalance(args[0])
		if err != nil {
			return nil, err
		}
		if from < amount {
			return nil, fmt.Errorf("insufficient funds in %q", args[0])
		}
		to, err := readBalance(args[1])
		if err != nil {
			return nil, err
		}
		if err := writeBalance(args[0], from-amount); err != nil {
			return nil, err
		}
		if err := writeBalance(args[1], to+amount); err != nil {
			return nil, err
		}
		return []byte("transferred"), nil
	case "balance":
		if len(args) != 1 {
			return nil, errors.New("bank balance: want account")
		}
		balance, err := readBalance(args[0])
		if err != nil {
			return nil, err
		}
		return []byte(strconv.FormatInt(balance, 10)), nil
	default:
		return nil, fmt.Errorf("bank: unknown function %q", fn)
	}
}
