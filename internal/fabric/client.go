package fabric

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
)

// Client errors.
var (
	ErrEndorsementMismatch = errors.New("client: endorsers returned divergent read/write sets")
	ErrPolicyUnsatisfiable = errors.New("client: collected endorsements do not satisfy the policy")
)

// ClientConfig parameterizes an application client.
type ClientConfig struct {
	// ID is the client identity (appears in envelopes).
	ID string
	// Key signs envelopes.
	Key *cryptoutil.KeyPair
	// ChannelID is the channel transactions are submitted to.
	ChannelID string
	// Endorsers are the endorsing peers contacted per transaction.
	Endorsers []*Endorser
	// Policy is checked client-side before broadcasting (step 3: the
	// client "checks if the endorsement policies has been fulfilled").
	Policy Policy
	// Orderer broadcasts assembled envelopes.
	Orderer Broadcaster
	// Committer is the peer whose commit events complete Submit. In a real
	// network the client would subscribe to its own organization's peer.
	Committer *Peer
}

// TxResult is the outcome of a committed transaction.
type TxResult struct {
	TxID     string
	BlockNum uint64
	Code     TxValidationCode
	Response []byte
}

// Client drives the full six-step HLF protocol of Figure 2: simulate at the
// endorsers, verify and assemble the endorsements, broadcast to the
// ordering service, and wait for the commit event.
type Client struct {
	cfg    ClientConfig
	nonce  atomic.Uint64
	events <-chan CommitEvent
}

// NewClient validates the configuration and subscribes to commit events.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.ID == "" {
		return nil, errors.New("client: empty id")
	}
	if cfg.Key == nil {
		return nil, errors.New("client: nil key")
	}
	if len(cfg.Endorsers) == 0 {
		return nil, errors.New("client: no endorsers")
	}
	if cfg.Policy == nil {
		return nil, errors.New("client: nil policy")
	}
	if cfg.Orderer == nil {
		return nil, errors.New("client: nil orderer")
	}
	if cfg.Committer == nil {
		return nil, errors.New("client: nil committer")
	}
	return &Client{cfg: cfg, events: cfg.Committer.Subscribe()}, nil
}

// newTxID derives a transaction id from the client identity and a nonce.
func (c *Client) newTxID() string {
	n := c.nonce.Add(1)
	d := cryptoutil.Hash([]byte(c.cfg.ID + ":" + strconv.FormatUint(n, 10)))
	return d.String()
}

// Submit runs one transaction through endorsement, ordering, validation,
// and commit, returning the validation outcome.
func (c *Client) Submit(ctx context.Context, chaincodeID, fn string, args [][]byte) (*TxResult, error) {
	txID := c.newTxID()
	proposal := &Proposal{
		TxID:              txID,
		ChannelID:         c.cfg.ChannelID,
		ChaincodeID:       chaincodeID,
		Fn:                fn,
		Args:              args,
		ClientID:          c.cfg.ID,
		TimestampUnixNano: time.Now().UnixNano(),
	}

	// Step 2: endorsing peers simulate the transaction.
	responses := make([]*ProposalResponse, 0, len(c.cfg.Endorsers))
	for _, endorser := range c.cfg.Endorsers {
		resp, err := endorser.ProcessProposal(proposal)
		if err != nil {
			return nil, fmt.Errorf("endorsement from %s: %w", endorser.ID(), err)
		}
		responses = append(responses, resp)
	}

	// Step 3: the client checks that responses carry matching read/write
	// sets and that the policy is satisfiable, then assembles the
	// transaction.
	first := responses[0]
	tx := &Transaction{
		TxID:        txID,
		ChaincodeID: chaincodeID,
		RWSet:       first.RWSet,
		Response:    first.Response,
	}
	refDigest := tx.ResponseDigest()
	endorserIDs := make([]string, 0, len(responses))
	for _, resp := range responses {
		check := &Transaction{
			TxID:        txID,
			ChaincodeID: chaincodeID,
			RWSet:       resp.RWSet,
			Response:    resp.Response,
		}
		if check.ResponseDigest() != refDigest {
			return nil, ErrEndorsementMismatch
		}
		tx.Endorsements = append(tx.Endorsements, resp.Endorsement)
		endorserIDs = append(endorserIDs, resp.PeerID)
	}
	if !c.cfg.Policy.Satisfied(endorserIDs) {
		return nil, fmt.Errorf("%w: have %v, need %s", ErrPolicyUnsatisfiable, endorserIDs, c.cfg.Policy)
	}

	// Step 4: broadcast the signed envelope to the ordering service.
	env := &Envelope{
		ChannelID:         c.cfg.ChannelID,
		ClientID:          c.cfg.ID,
		TimestampUnixNano: proposal.TimestampUnixNano,
		Payload:           tx.Marshal(),
	}
	if err := env.Sign(c.cfg.Key); err != nil {
		return nil, err
	}
	if status := c.cfg.Orderer.Broadcast(env); status != StatusSuccess {
		return nil, fmt.Errorf("broadcast rejected with %s: %w", status, status.Err())
	}

	// Step 6: wait for the commit notification.
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("await commit of %s: %w", txID, ctx.Err())
		case ev, ok := <-c.events:
			if !ok {
				return nil, errors.New("client: commit event stream closed")
			}
			if ev.TxID != txID {
				continue
			}
			return &TxResult{
				TxID:     txID,
				BlockNum: ev.BlockNum,
				Code:     ev.Code,
				Response: first.Response,
			}, nil
		}
	}
}
