package fabric

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
)

// Ledger errors.
var (
	ErrBlockNumber   = errors.New("ledger: block number out of sequence")
	ErrBrokenChain   = errors.New("ledger: previous-hash mismatch")
	ErrBlockNotFound = errors.New("ledger: block not found")
)

// BlockBackend persists blocks accepted by a ledger. Implementations
// (storage.NodeStorage, storage.BlockStore) must be idempotent for block
// numbers they already hold, so recovery can replay a chain through
// Append without duplicating records.
type BlockBackend interface {
	PutBlock(channel string, b *Block) error
}

// BlockReader serves random-access reads of persisted blocks: up to max
// blocks of one channel starting at block number start, in order. A
// backend that also implements BlockReader lets a persistent ledger keep
// only a bounded tail of the chain in memory and page older blocks back
// in on demand (historical Deliver seeks, FetchBlocks back-fill).
type BlockReader interface {
	ReadBlocks(channel string, start uint64, max int) ([]*Block, error)
}

// DefaultLedgerRetain is how many recent blocks a persistent ledger with a
// read-capable backend keeps in memory; older blocks are served from the
// backend.
const DefaultLedgerRetain = 1024

// Ledger is one channel's append-only blockchain, as maintained by a
// committing peer or an ordering node. Append verifies the hash chain, so
// a tampered or out-of-order block is rejected rather than stored. With a
// backend attached, every accepted block is durably persisted before it
// becomes visible in memory; when the backend can also read blocks back,
// the ledger retains only the newest blocks in memory and serves older
// ones from storage. Safe for concurrent use.
type Ledger struct {
	mu      sync.RWMutex
	channel string
	backend BlockBackend
	reader  BlockReader
	retain  int // in-memory window when reader != nil (0 = unlimited)

	blocks   []*Block // in-memory tail, blocks[i].Number == base+i
	base     uint64   // number of blocks[0]
	height   uint64   // next block number to append
	lastHash cryptoutil.Digest
	envCount int
}

// NewLedger creates an empty in-memory ledger.
func NewLedger() *Ledger {
	return &Ledger{}
}

// NewPersistentLedger creates an empty ledger whose appended blocks are
// written through to backend under the given channel name. If the backend
// also implements BlockReader, the ledger keeps only DefaultLedgerRetain
// blocks in memory and pages older ones from the backend.
func NewPersistentLedger(channel string, backend BlockBackend) *Ledger {
	l := &Ledger{channel: channel, backend: backend}
	if r, ok := backend.(BlockReader); ok {
		l.reader = r
		l.retain = DefaultLedgerRetain
	}
	return l
}

// Height returns the number of blocks appended so far.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.height
}

// Append verifies and appends a block: its number must be the current
// height, its previous hash must match the last header, and its data hash
// must match its envelopes. With a backend attached, the block is durably
// persisted before the in-memory chain (and thus any reader) sees it; a
// persistence failure rejects the append entirely.
func (l *Ledger) Append(b *Block) error {
	if err := b.CheckIntegrity(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if b.Header.Number != l.height {
		return fmt.Errorf("%w: got %d, want %d", ErrBlockNumber, b.Header.Number, l.height)
	}
	if l.height == 0 {
		if !b.Header.PrevHash.IsZero() {
			return fmt.Errorf("%w: genesis must have zero previous hash", ErrBrokenChain)
		}
	} else if b.Header.PrevHash != l.lastHash {
		return fmt.Errorf("%w at block %d", ErrBrokenChain, b.Header.Number)
	}
	if l.backend != nil {
		if err := l.backend.PutBlock(l.channel, b); err != nil {
			return fmt.Errorf("ledger: persisting block %d: %w", b.Header.Number, err)
		}
	}
	l.blocks = append(l.blocks, b)
	l.height++
	l.lastHash = b.Header.Hash()
	l.envCount += len(b.Envelopes)
	// Trim with slack so the O(retain) copy amortizes to O(1) per append
	// instead of recurring on every block at steady state.
	if l.reader != nil && l.retain > 0 && len(l.blocks) > l.retain+l.retain/4 {
		drop := len(l.blocks) - l.retain
		l.blocks = append(l.blocks[:0:0], l.blocks[drop:]...)
		l.base += uint64(drop)
	}
	return nil
}

// Block returns the block at the given number, reading it back from the
// backend if it fell out of the in-memory window.
func (l *Ledger) Block(number uint64) (*Block, error) {
	l.mu.RLock()
	if number >= l.height {
		height := l.height
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: %d (height %d)", ErrBlockNotFound, number, height)
	}
	if number >= l.base {
		b := l.blocks[number-l.base]
		l.mu.RUnlock()
		return b, nil
	}
	reader, channel := l.reader, l.channel
	l.mu.RUnlock()
	blocks, err := reader.ReadBlocks(channel, number, 1)
	if err != nil {
		return nil, fmt.Errorf("ledger: reading block %d: %w", number, err)
	}
	if len(blocks) == 0 || blocks[0].Header.Number != number {
		return nil, fmt.Errorf("%w: %d (backend miss)", ErrBlockNotFound, number)
	}
	return blocks[0], nil
}

// Range returns blocks [start, end) in order, combining the backend (for
// blocks below the in-memory window) with the in-memory tail. end is
// clamped to the current height.
func (l *Ledger) Range(start, end uint64) ([]*Block, error) {
	l.mu.RLock()
	if end > l.height {
		end = l.height
	}
	if start >= end {
		l.mu.RUnlock()
		return nil, nil
	}
	base := l.base
	var tail []*Block
	if end > base {
		from := base
		if start > base {
			from = start
		}
		tail = append(tail, l.blocks[from-base:end-base]...)
	}
	reader, channel := l.reader, l.channel
	l.mu.RUnlock()

	if start >= base {
		return tail, nil
	}
	if reader == nil {
		return nil, fmt.Errorf("%w: blocks %d..%d not retained", ErrBlockNotFound, start, base-1)
	}
	out := make([]*Block, 0, end-start)
	for next := start; next < base && next < end; {
		want := int(base - next)
		if stop := end - next; stop < uint64(want) {
			want = int(stop)
		}
		blocks, err := reader.ReadBlocks(channel, next, want)
		if err != nil {
			return nil, fmt.Errorf("ledger: reading blocks from %d: %w", next, err)
		}
		if len(blocks) == 0 {
			return nil, fmt.Errorf("%w: %d (backend miss)", ErrBlockNotFound, next)
		}
		for _, b := range blocks {
			if b.Header.Number != next {
				return nil, fmt.Errorf("ledger: backend returned block %d, want %d", b.Header.Number, next)
			}
			out = append(out, b)
			next++
		}
	}
	return append(out, tail...), nil
}

// Blocks returns the chain from start (inclusive) onward. Blocks that are
// no longer retained in memory and cannot be read back are omitted from
// the front.
func (l *Ledger) Blocks(start uint64) []*Block {
	l.mu.RLock()
	height := l.height
	l.mu.RUnlock()
	out, err := l.Range(start, height)
	if err != nil {
		// Serve what memory still holds rather than failing a legacy read.
		l.mu.RLock()
		defer l.mu.RUnlock()
		if start < l.base {
			start = l.base
		}
		if start >= l.height {
			return nil
		}
		return append([]*Block(nil), l.blocks[start-l.base:]...)
	}
	return out
}

// LastHash returns the header hash of the newest block (zero digest for an
// empty ledger).
func (l *Ledger) LastHash() cryptoutil.Digest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastHash
}

// VerifyChain re-validates the whole chain (integrity + linkage),
// streaming paged-out blocks back from the backend in bounded windows.
func (l *Ledger) VerifyChain() error {
	const window = 256
	l.mu.RLock()
	height := l.height
	l.mu.RUnlock()
	var prev *Block
	for start := uint64(0); start < height; start += window {
		end := start + window
		if end > height {
			end = height
		}
		blocks, err := l.Range(start, end)
		if err != nil {
			return err
		}
		if uint64(len(blocks)) != end-start {
			return fmt.Errorf("%w: range %d..%d returned %d blocks",
				ErrBlockNotFound, start, end-1, len(blocks))
		}
		if prev != nil {
			if blocks[0].Header.PrevHash != prev.Header.Hash() {
				return fmt.Errorf("%w at block %d", ErrBrokenChain, blocks[0].Header.Number)
			}
		}
		if err := VerifyChain(blocks); err != nil {
			return err
		}
		prev = blocks[len(blocks)-1]
	}
	return nil
}

// EnvelopeCount returns the total number of envelopes across all blocks.
func (l *Ledger) EnvelopeCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.envCount
}
