package fabric

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
)

// Ledger errors.
var (
	ErrBlockNumber   = errors.New("ledger: block number out of sequence")
	ErrBrokenChain   = errors.New("ledger: previous-hash mismatch")
	ErrBlockNotFound = errors.New("ledger: block not found")
)

// BlockBackend persists blocks accepted by a ledger. Implementations
// (storage.NodeStorage, storage.BlockStore) must be idempotent for block
// numbers they already hold, so recovery can replay a chain through
// Append without duplicating records.
type BlockBackend interface {
	PutBlock(channel string, b *Block) error
}

// DurableToken tracks an asynchronously persisted block: Wait blocks
// until the record's group commit fsynced and returns the commit error,
// if any. Backends complete tokens in append order, so waiting on the
// newest token of a run implies the whole run is durable.
type DurableToken interface {
	Wait() error
}

// AsyncBlockBackend is the optional extension backends implement when
// they can enqueue a block put and complete it on a later group commit
// (storage.NodeStorage's commit queue over the unified log). AppendAsync uses it to
// persist a contiguous run of blocks in one fsync wave instead of one
// wave per block.
type AsyncBlockBackend interface {
	BlockBackend
	// PutBlockAsync enqueues the block for the next group commit and
	// returns its durability token. Puts for one channel must be called
	// in block order and commit in call order.
	PutBlockAsync(channel string, b *Block) (DurableToken, error)
}

// BlockReader serves random-access reads of persisted blocks: up to max
// blocks of one channel starting at block number start, in order. A
// backend that also implements BlockReader lets a persistent ledger keep
// only a bounded tail of the chain in memory and page older blocks back
// in on demand (historical Deliver seeks, FetchBlocks back-fill).
type BlockReader interface {
	ReadBlocks(channel string, start uint64, max int) ([]*Block, error)
}

// BlockRebaser is implemented by backends that support retention: Rebase
// jumps a channel's durable chain forward over a pruned gap (the blocks
// in between are unobtainable cluster-wide), and future appends resume
// at the new floor, anchored by the given previous-hash.
type BlockRebaser interface {
	RebaseBlocks(channel string, floor uint64, anchor cryptoutil.Digest) error
}

// DefaultLedgerRetain is how many recent blocks a persistent ledger with a
// read-capable backend keeps in memory; older blocks are served from the
// backend.
const DefaultLedgerRetain = 1024

// Ledger is one channel's append-only blockchain, as maintained by a
// committing peer or an ordering node. Append verifies the hash chain, so
// a tampered or out-of-order block is rejected rather than stored. With a
// backend attached, every accepted block is durably persisted before it
// becomes visible in memory; when the backend can also read blocks back,
// the ledger retains only the newest blocks in memory and serves older
// ones from storage. Safe for concurrent use.
type Ledger struct {
	mu      sync.RWMutex
	channel string
	backend BlockBackend
	reader  BlockReader
	retain  int // in-memory window when reader != nil (0 = unlimited)

	blocks   []*Block // in-memory tail, blocks[i].Number == base+i
	base     uint64   // number of blocks[0]
	height   uint64   // next block number to append
	lastHash cryptoutil.Digest
	envCount int

	// floor is the first retained block number (0 without retention);
	// reads below it answer ErrPruned. anchor is the PrevHash of block
	// floor (zero when floor is 0): the linkage the first retained block
	// must carry, standing in for the pruned prefix.
	floor  uint64
	anchor cryptoutil.Digest
}

// NewLedger creates an empty in-memory ledger.
func NewLedger() *Ledger {
	return &Ledger{}
}

// NewPersistentLedger creates an empty ledger whose appended blocks are
// written through to backend under the given channel name. If the backend
// also implements BlockReader, the ledger keeps only DefaultLedgerRetain
// blocks in memory and pages older ones from the backend.
func NewPersistentLedger(channel string, backend BlockBackend) *Ledger {
	l := &Ledger{channel: channel, backend: backend}
	if r, ok := backend.(BlockReader); ok {
		l.reader = r
		l.retain = DefaultLedgerRetain
	}
	return l
}

// ChainState positions a restored ledger: the retention floor and its
// anchor, plus the chain frontier (height and the newest header's hash).
type ChainState struct {
	Floor    uint64
	Anchor   cryptoutil.Digest
	Height   uint64
	LastHash cryptoutil.Digest
}

// RestoreLedger rebuilds a persistent ledger from a recovered chain
// frontier without loading any blocks into memory: the backend already
// holds blocks [st.Floor, st.Height), appends continue at st.Height, and
// reads page from the backend on demand. This is what makes recovery
// O(manifest) instead of O(chain).
func RestoreLedger(channel string, backend BlockBackend, st ChainState) *Ledger {
	l := NewPersistentLedger(channel, backend)
	l.floor = st.Floor
	l.anchor = st.Anchor
	l.base = st.Height
	l.height = st.Height
	l.lastHash = st.LastHash
	return l
}

// Height returns the number of blocks appended so far.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.height
}

// Floor returns the first retained block number (0 without retention).
func (l *Ledger) Floor() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.floor
}

// Append verifies and appends a block: its number must be the current
// height, its previous hash must match the last header, and its data hash
// must match its envelopes. With a backend attached, the block is durably
// persisted before the in-memory chain (and thus any reader) sees it; a
// persistence failure rejects the append entirely.
func (l *Ledger) Append(b *Block) error {
	if err := b.CheckIntegrity(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkLinkLocked(b); err != nil {
		return err
	}
	if l.backend != nil {
		if err := l.backend.PutBlock(l.channel, b); err != nil {
			return fmt.Errorf("ledger: persisting block %d: %w", b.Header.Number, err)
		}
	}
	l.commitLocked(b)
	return nil
}

// AppendAsync verifies and appends a block like Append, but when the
// backend supports asynchronous puts the block's record is only enqueued
// for the next group commit: the call returns immediately with a
// durability token (nil for a backend-less or synchronous-backend
// ledger, in which case the append is already durable). The block is
// visible in memory right away; callers that must not show it to anyone
// before it is on disk (the ordering node's send drain) wait on the
// token. Puts commit in append order, so persisting a contiguous run
// costs one fsync wave — wait on the run's last token.
func (l *Ledger) AppendAsync(b *Block) (DurableToken, error) {
	return l.appendAsync(b, true)
}

// AppendSealedAsync is AppendAsync for blocks the caller just sealed
// itself (fabric.NewBlock computes DataHash from the envelopes, so
// re-hashing them to verify integrity is pure waste on the hot path).
// Blocks obtained from anyone else must go through Append/AppendAsync,
// which verify before storing.
func (l *Ledger) AppendSealedAsync(b *Block) (DurableToken, error) {
	return l.appendAsync(b, false)
}

func (l *Ledger) appendAsync(b *Block, verify bool) (DurableToken, error) {
	if verify {
		if err := b.CheckIntegrity(); err != nil {
			return nil, err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkLinkLocked(b); err != nil {
		return nil, err
	}
	var tok DurableToken
	if l.backend != nil {
		async, ok := l.backend.(AsyncBlockBackend)
		if !ok {
			if err := l.backend.PutBlock(l.channel, b); err != nil {
				return nil, fmt.Errorf("ledger: persisting block %d: %w", b.Header.Number, err)
			}
		} else {
			var err error
			tok, err = async.PutBlockAsync(l.channel, b)
			if err != nil {
				return nil, fmt.Errorf("ledger: persisting block %d: %w", b.Header.Number, err)
			}
		}
	}
	l.commitLocked(b)
	return tok, nil
}

// checkLinkLocked verifies a block extends the chain: the next number,
// linked by previous hash (or anchored at the retention floor).
func (l *Ledger) checkLinkLocked(b *Block) error {
	if b.Header.Number != l.height {
		return fmt.Errorf("%w: got %d, want %d", ErrBlockNumber, b.Header.Number, l.height)
	}
	switch {
	case l.height > l.floor:
		if b.Header.PrevHash != l.lastHash {
			return fmt.Errorf("%w at block %d", ErrBrokenChain, b.Header.Number)
		}
	case l.floor == 0:
		if !b.Header.PrevHash.IsZero() {
			return fmt.Errorf("%w: genesis must have zero previous hash", ErrBrokenChain)
		}
	default:
		// First block above a retention floor: it must link into the
		// anchor the pruned prefix left behind.
		if b.Header.PrevHash != l.anchor {
			return fmt.Errorf("%w: block %d does not link into the retention anchor",
				ErrBrokenChain, b.Header.Number)
		}
	}
	return nil
}

// commitLocked makes an accepted block visible in memory.
func (l *Ledger) commitLocked(b *Block) {
	l.blocks = append(l.blocks, b)
	l.height++
	l.lastHash = b.Header.Hash()
	l.envCount += len(b.Envelopes)
	// Trim with slack so the O(retain) copy amortizes to O(1) per append
	// instead of recurring on every block at steady state.
	if l.reader != nil && l.retain > 0 && len(l.blocks) > l.retain+l.retain/4 {
		drop := len(l.blocks) - l.retain
		l.blocks = append(l.blocks[:0:0], l.blocks[drop:]...)
		l.base += uint64(drop)
	}
}

// Block returns the block at the given number, reading it back from the
// backend if it fell out of the in-memory window. Numbers below the
// retention floor answer ErrPruned.
func (l *Ledger) Block(number uint64) (*Block, error) {
	l.mu.RLock()
	if number < l.floor {
		pe := &PrunedError{Channel: l.channel, Floor: l.floor}
		l.mu.RUnlock()
		return nil, pe
	}
	if number >= l.height {
		height := l.height
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: %d (height %d)", ErrBlockNotFound, number, height)
	}
	if number >= l.base {
		b := l.blocks[number-l.base]
		l.mu.RUnlock()
		return b, nil
	}
	reader, channel := l.reader, l.channel
	l.mu.RUnlock()
	blocks, err := reader.ReadBlocks(channel, number, 1)
	if err != nil {
		return nil, fmt.Errorf("ledger: reading block %d: %w", number, err)
	}
	if len(blocks) == 0 || blocks[0].Header.Number != number {
		return nil, fmt.Errorf("%w: %d (backend miss)", ErrBlockNotFound, number)
	}
	return blocks[0], nil
}

// Range returns blocks [start, end) in order, combining the backend (for
// blocks below the in-memory window) with the in-memory tail. end is
// clamped to the current height. A start below the retention floor
// answers ErrPruned.
func (l *Ledger) Range(start, end uint64) ([]*Block, error) {
	l.mu.RLock()
	if start < l.floor {
		pe := &PrunedError{Channel: l.channel, Floor: l.floor}
		l.mu.RUnlock()
		return nil, pe
	}
	if end > l.height {
		end = l.height
	}
	if start >= end {
		l.mu.RUnlock()
		return nil, nil
	}
	base := l.base
	var tail []*Block
	if end > base {
		from := base
		if start > base {
			from = start
		}
		tail = append(tail, l.blocks[from-base:end-base]...)
	}
	reader, channel := l.reader, l.channel
	l.mu.RUnlock()

	if start >= base {
		return tail, nil
	}
	if reader == nil {
		return nil, fmt.Errorf("%w: blocks %d..%d not retained", ErrBlockNotFound, start, base-1)
	}
	out := make([]*Block, 0, end-start)
	for next := start; next < base && next < end; {
		want := int(base - next)
		if stop := end - next; stop < uint64(want) {
			want = int(stop)
		}
		blocks, err := reader.ReadBlocks(channel, next, want)
		if err != nil {
			return nil, fmt.Errorf("ledger: reading blocks from %d: %w", next, err)
		}
		if len(blocks) == 0 {
			return nil, fmt.Errorf("%w: %d (backend miss)", ErrBlockNotFound, next)
		}
		for _, b := range blocks {
			if b.Header.Number != next {
				return nil, fmt.Errorf("ledger: backend returned block %d, want %d", b.Header.Number, next)
			}
			out = append(out, b)
			next++
		}
	}
	return append(out, tail...), nil
}

// Blocks returns the chain from start (inclusive) onward. Blocks that are
// no longer retained in memory and cannot be read back — or fell below
// the retention floor — are omitted from the front.
func (l *Ledger) Blocks(start uint64) []*Block {
	l.mu.RLock()
	height := l.height
	if start < l.floor {
		start = l.floor
	}
	l.mu.RUnlock()
	out, err := l.Range(start, height)
	if err != nil {
		// Serve what memory still holds rather than failing a legacy read.
		l.mu.RLock()
		defer l.mu.RUnlock()
		if start < l.base {
			start = l.base
		}
		if start >= l.height {
			return nil
		}
		return append([]*Block(nil), l.blocks[start-l.base:]...)
	}
	return out
}

// LastHash returns the header hash of the newest block (zero digest for an
// empty ledger).
func (l *Ledger) LastHash() cryptoutil.Digest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastHash
}

// AdvanceFloor raises the retention floor after the backend compacted:
// reads below the new floor answer ErrPruned and the in-memory tail
// drops anything beneath it. The anchor is taken from the block at the
// new floor (which the backend still retains). A floor at or below the
// current one, or at or above the height, is a no-op.
func (l *Ledger) AdvanceFloor(floor uint64) error {
	l.mu.RLock()
	current, height := l.floor, l.height
	l.mu.RUnlock()
	if floor <= current || floor >= height {
		return nil
	}
	b, err := l.Block(floor)
	if err != nil {
		return fmt.Errorf("ledger: advancing floor to %d: %w", floor, err)
	}
	anchor := b.Header.PrevHash
	l.mu.Lock()
	defer l.mu.Unlock()
	if floor <= l.floor || floor >= l.height {
		return nil // raced with another advance or a rebase
	}
	l.floor = floor
	l.anchor = anchor
	if l.base < floor {
		drop := floor - l.base
		if drop >= uint64(len(l.blocks)) {
			l.blocks = nil
			l.base = l.height
		} else {
			l.blocks = append(l.blocks[:0:0], l.blocks[drop:]...)
			l.base = floor
		}
	}
	return nil
}

// Rebase jumps the chain forward over a gap that can no longer be
// filled: every peer pruned the blocks between the current height and
// floor, so the node adopts floor as its new retention floor and resumes
// appending there, anchored by the given previous-hash (verified by the
// caller against a trusted chain suffix). The backend, when it supports
// rebasing, is moved first so the durable record never trails the
// in-memory state.
func (l *Ledger) Rebase(floor uint64, anchor cryptoutil.Digest) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if floor < l.height {
		return fmt.Errorf("ledger: rebase to %d behind height %d", floor, l.height)
	}
	if rb, ok := l.backend.(BlockRebaser); ok {
		if err := rb.RebaseBlocks(l.channel, floor, anchor); err != nil {
			return fmt.Errorf("ledger: rebasing backend: %w", err)
		}
	}
	l.blocks = nil
	l.base = floor
	l.height = floor
	l.floor = floor
	l.anchor = anchor
	l.lastHash = cryptoutil.Digest{}
	return nil
}

// VerifyChain re-validates the retained chain (integrity + linkage from
// the retention floor, whose first block must link into the anchor),
// streaming paged-out blocks back from the backend in bounded windows.
func (l *Ledger) VerifyChain() error {
	const window = 256
	l.mu.RLock()
	height := l.height
	floor := l.floor
	anchor := l.anchor
	l.mu.RUnlock()
	var prev *Block
	for start := floor; start < height; start += window {
		end := start + window
		if end > height {
			end = height
		}
		blocks, err := l.Range(start, end)
		if err != nil {
			return err
		}
		if uint64(len(blocks)) != end-start {
			return fmt.Errorf("%w: range %d..%d returned %d blocks",
				ErrBlockNotFound, start, end-1, len(blocks))
		}
		if prev != nil {
			if blocks[0].Header.PrevHash != prev.Header.Hash() {
				return fmt.Errorf("%w at block %d", ErrBrokenChain, blocks[0].Header.Number)
			}
		} else if floor > 0 && blocks[0].Header.PrevHash != anchor {
			return fmt.Errorf("%w: block %d does not link into the retention anchor",
				ErrBrokenChain, blocks[0].Header.Number)
		}
		if err := VerifyChain(blocks); err != nil {
			return err
		}
		prev = blocks[len(blocks)-1]
	}
	return nil
}

// EnvelopeCount returns the total number of envelopes across all blocks.
func (l *Ledger) EnvelopeCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.envCount
}
