package fabric

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
)

// Ledger errors.
var (
	ErrBlockNumber   = errors.New("ledger: block number out of sequence")
	ErrBrokenChain   = errors.New("ledger: previous-hash mismatch")
	ErrBlockNotFound = errors.New("ledger: block not found")
)

// BlockBackend persists blocks accepted by a ledger. Implementations
// (storage.NodeStorage, storage.BlockStore) must be idempotent for block
// numbers they already hold, so recovery can replay a chain through
// Append without duplicating records.
type BlockBackend interface {
	PutBlock(channel string, b *Block) error
}

// Ledger is one channel's append-only blockchain, as maintained by a
// committing peer. Append verifies the hash chain, so a tampered or
// out-of-order block is rejected rather than stored. With a backend
// attached, every accepted block is durably persisted before it becomes
// visible in memory. Safe for concurrent use.
type Ledger struct {
	mu      sync.RWMutex
	blocks  []*Block
	channel string
	backend BlockBackend
}

// NewLedger creates an empty in-memory ledger.
func NewLedger() *Ledger {
	return &Ledger{}
}

// NewPersistentLedger creates an empty ledger whose appended blocks are
// written through to backend under the given channel name.
func NewPersistentLedger(channel string, backend BlockBackend) *Ledger {
	return &Ledger{channel: channel, backend: backend}
}

// Height returns the number of blocks appended so far.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.blocks))
}

// Append verifies and appends a block: its number must be the current
// height, its previous hash must match the last header, and its data hash
// must match its envelopes. With a backend attached, the block is durably
// persisted before the in-memory chain (and thus any reader) sees it; a
// persistence failure rejects the append entirely.
func (l *Ledger) Append(b *Block) error {
	if err := b.CheckIntegrity(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	height := uint64(len(l.blocks))
	if b.Header.Number != height {
		return fmt.Errorf("%w: got %d, want %d", ErrBlockNumber, b.Header.Number, height)
	}
	if height == 0 {
		if !b.Header.PrevHash.IsZero() {
			return fmt.Errorf("%w: genesis must have zero previous hash", ErrBrokenChain)
		}
	} else if prev := l.blocks[height-1].Header.Hash(); b.Header.PrevHash != prev {
		return fmt.Errorf("%w at block %d", ErrBrokenChain, b.Header.Number)
	}
	if l.backend != nil {
		if err := l.backend.PutBlock(l.channel, b); err != nil {
			return fmt.Errorf("ledger: persisting block %d: %w", b.Header.Number, err)
		}
	}
	l.blocks = append(l.blocks, b)
	return nil
}

// Block returns the block at the given number.
func (l *Ledger) Block(number uint64) (*Block, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if number >= uint64(len(l.blocks)) {
		return nil, fmt.Errorf("%w: %d (height %d)", ErrBlockNotFound, number, len(l.blocks))
	}
	return l.blocks[number], nil
}

// LastHash returns the header hash of the newest block (zero digest for an
// empty ledger).
func (l *Ledger) LastHash() cryptoutil.Digest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		return cryptoutil.Digest{}
	}
	return l.blocks[len(l.blocks)-1].Header.Hash()
}

// Blocks returns the chain from start (inclusive) onward.
func (l *Ledger) Blocks(start uint64) []*Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if start >= uint64(len(l.blocks)) {
		return nil
	}
	out := make([]*Block, len(l.blocks)-int(start))
	copy(out, l.blocks[start:])
	return out
}

// VerifyChain re-validates the whole chain (integrity + linkage).
func (l *Ledger) VerifyChain() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return VerifyChain(l.blocks)
}

// EnvelopeCount returns the total number of envelopes across all blocks.
func (l *Ledger) EnvelopeCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	total := 0
	for _, b := range l.blocks {
		total += len(b.Envelopes)
	}
	return total
}
