// Package cryptoutil provides the cryptographic substrate of the ordering
// service: ECDSA P-256 identities (the signature scheme Hyperledger Fabric
// uses for block and endorsement signatures), SHA-256 digests and hash
// chaining, an identity registry, and a parallel signing pool that mirrors
// the signing/sending worker threads of the BFT-SMaRt ordering node
// (Section 5.1 of the paper, evaluated in Figure 6).
package cryptoutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DigestSize is the size in bytes of all digests used by the system.
const DigestSize = sha256.Size

// Digest is a SHA-256 digest. It is the hash type used for block headers,
// batch hashes in the consensus protocol, and signature inputs.
type Digest [DigestSize]byte

// Hash returns the SHA-256 digest of data.
func Hash(data []byte) Digest {
	return sha256.Sum256(data)
}

// HashConcat hashes the concatenation of all parts, each prefixed by its
// length so that part boundaries are unambiguous.
func HashConcat(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		putUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * (7 - i)))
	}
}

// IsZero reports whether the digest is all zeroes (the genesis previous-hash).
func (d Digest) IsZero() bool {
	return d == Digest{}
}

// Bytes returns the digest as a fresh byte slice.
func (d Digest) Bytes() []byte {
	out := make([]byte, DigestSize)
	copy(out, d[:])
	return out
}

// String returns a short hexadecimal prefix of the digest for logging.
func (d Digest) String() string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 0; i < 8; i++ {
		out[2*i] = hexdigits[d[i]>>4]
		out[2*i+1] = hexdigits[d[i]&0xf]
	}
	return string(out)
}

// DigestFromBytes converts a byte slice into a Digest. It returns an error if
// the slice does not have exactly DigestSize bytes.
func DigestFromBytes(b []byte) (Digest, error) {
	var d Digest
	if len(b) != DigestSize {
		return d, fmt.Errorf("digest must be %d bytes, got %d", DigestSize, len(b))
	}
	copy(d[:], b)
	return d, nil
}

// KeyPair is an ECDSA P-256 signing identity. Fabric signs blocks and
// endorsements with ECDSA; the paper's Figure 6 measures exactly this
// signature generation.
type KeyPair struct {
	priv *ecdsa.PrivateKey
}

// GenerateKeyPair creates a fresh P-256 key pair.
func GenerateKeyPair() (*KeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ecdsa key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// Sign signs digest (which must already be a hash) and returns an ASN.1
// DER-encoded ECDSA signature.
func (k *KeyPair) Sign(digest []byte) ([]byte, error) {
	sig, err := ecdsa.SignASN1(rand.Reader, k.priv, digest)
	if err != nil {
		return nil, fmt.Errorf("ecdsa sign: %w", err)
	}
	return sig, nil
}

// SignDigest signs a Digest value.
func (k *KeyPair) SignDigest(d Digest) ([]byte, error) {
	return k.Sign(d[:])
}

// Public returns the public half of the key pair.
func (k *KeyPair) Public() PublicKey {
	return PublicKey{pub: &k.priv.PublicKey}
}

// PublicKey is an ECDSA P-256 verification key.
type PublicKey struct {
	pub *ecdsa.PublicKey
}

// Verify reports whether sig is a valid signature of digest under the key.
func (p PublicKey) Verify(digest, sig []byte) bool {
	if p.pub == nil {
		return false
	}
	return ecdsa.VerifyASN1(p.pub, digest, sig)
}

// VerifyDigest verifies a signature over a Digest value.
func (p PublicKey) VerifyDigest(d Digest, sig []byte) bool {
	return p.Verify(d[:], sig)
}

// Bytes serializes the public key in PKIX/DER form.
func (p PublicKey) Bytes() ([]byte, error) {
	if p.pub == nil {
		return nil, errors.New("nil public key")
	}
	der, err := x509.MarshalPKIXPublicKey(p.pub)
	if err != nil {
		return nil, fmt.Errorf("marshal public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey parses a PKIX/DER-encoded ECDSA public key.
func ParsePublicKey(der []byte) (PublicKey, error) {
	key, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return PublicKey{}, fmt.Errorf("parse public key: %w", err)
	}
	ec, ok := key.(*ecdsa.PublicKey)
	if !ok {
		return PublicKey{}, fmt.Errorf("public key is %T, want *ecdsa.PublicKey", key)
	}
	return PublicKey{pub: ec}, nil
}

// Registry maps identity names (ordering nodes, peers, clients) to their
// public keys. It stands in for Fabric's membership service provider: every
// component that verifies a signature resolves the signer through a Registry.
// The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu   sync.RWMutex
	keys map[string]PublicKey
}

// NewRegistry creates an empty identity registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[string]PublicKey)}
}

// Register associates an identity name with a public key. Re-registering a
// name overwrites the previous key (used by reconfiguration).
func (r *Registry) Register(name string, key PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[name] = key
}

// Lookup returns the public key for name.
func (r *Registry) Lookup(name string) (PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	key, ok := r.keys[name]
	return key, ok
}

// Remove deletes an identity from the registry.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.keys, name)
}

// Names returns the sorted list of registered identity names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.keys))
	for name := range r.keys {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Verify resolves name and verifies sig over digest, returning false for
// unknown identities.
func (r *Registry) Verify(name string, digest, sig []byte) bool {
	key, ok := r.Lookup(name)
	if !ok {
		return false
	}
	return key.Verify(digest, sig)
}
