package cryptoutil

import (
	"errors"
	"sync"
	"testing"
)

func newTestPool(t *testing.T, workers int) *SigningPool {
	t.Helper()
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	pool, err := NewSigningPool(kp, workers)
	if err != nil {
		t.Fatalf("NewSigningPool: %v", err)
	}
	t.Cleanup(pool.Close)
	return pool
}

func TestSigningPoolSync(t *testing.T) {
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	pool, err := NewSigningPool(kp, 2)
	if err != nil {
		t.Fatalf("NewSigningPool: %v", err)
	}
	defer pool.Close()

	d := Hash([]byte("pool"))
	sig, err := pool.SignSync(d)
	if err != nil {
		t.Fatalf("SignSync: %v", err)
	}
	if !kp.Public().VerifyDigest(d, sig) {
		t.Fatal("pool produced invalid signature")
	}
	if pool.Signed() != 1 {
		t.Fatalf("Signed() = %d, want 1", pool.Signed())
	}
}

func TestSigningPoolAsyncMany(t *testing.T) {
	pool := newTestPool(t, 4)
	const jobs = 64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures int
	wg.Add(jobs)
	for i := 0; i < jobs; i++ {
		d := Hash([]byte{byte(i)})
		err := pool.Sign(d, func(sig []byte, err error) {
			defer wg.Done()
			if err != nil || len(sig) == 0 {
				mu.Lock()
				failures++
				mu.Unlock()
			}
		})
		if err != nil {
			t.Fatalf("Sign enqueue %d: %v", i, err)
		}
	}
	wg.Wait()
	if failures != 0 {
		t.Fatalf("%d signing jobs failed", failures)
	}
	if pool.Signed() != jobs {
		t.Fatalf("Signed() = %d, want %d", pool.Signed(), jobs)
	}
}

func TestSigningPoolClose(t *testing.T) {
	pool := newTestPool(t, 1)
	pool.Close()
	pool.Close() // idempotent
	err := pool.Sign(Hash([]byte("late")), func([]byte, error) {})
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Sign after close: got %v, want ErrPoolClosed", err)
	}
	if _, err := pool.SignSync(Hash([]byte("late"))); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("SignSync after close: got %v, want ErrPoolClosed", err)
	}
}

func TestSigningPoolValidation(t *testing.T) {
	if _, err := NewSigningPool(nil, 1); err == nil {
		t.Fatal("nil key accepted")
	}
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	if _, err := NewSigningPool(kp, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	pool, err := NewSigningPool(kp, 1)
	if err != nil {
		t.Fatalf("NewSigningPool: %v", err)
	}
	defer pool.Close()
	if err := pool.Sign(Digest{}, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	if pool.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", pool.Workers())
	}
}
