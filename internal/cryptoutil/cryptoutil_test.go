package cryptoutil

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("hello"))
	b := Hash([]byte("hello"))
	if a != b {
		t.Fatalf("same input hashed to different digests: %v vs %v", a, b)
	}
	c := Hash([]byte("hello!"))
	if a == c {
		t.Fatal("different inputs hashed to the same digest")
	}
}

func TestHashConcatBoundaries(t *testing.T) {
	// Length prefixes must make ("ab","c") differ from ("a","bc").
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("HashConcat does not separate part boundaries")
	}
}

func TestHashConcatProperty(t *testing.T) {
	f := func(parts [][]byte) bool {
		return HashConcat(parts...) == HashConcat(parts...)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigestIsZero(t *testing.T) {
	var zero Digest
	if !zero.IsZero() {
		t.Fatal("zero digest not reported as zero")
	}
	if Hash([]byte("x")).IsZero() {
		t.Fatal("nonzero digest reported as zero")
	}
}

func TestDigestBytesRoundTrip(t *testing.T) {
	d := Hash([]byte("round trip"))
	got, err := DigestFromBytes(d.Bytes())
	if err != nil {
		t.Fatalf("DigestFromBytes: %v", err)
	}
	if got != d {
		t.Fatalf("round trip mismatch: %v vs %v", got, d)
	}
	if _, err := DigestFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("short slice accepted as digest")
	}
}

func TestDigestBytesIsCopy(t *testing.T) {
	d := Hash([]byte("aliasing"))
	b := d.Bytes()
	b[0] ^= 0xff
	if bytes.Equal(b, d[:]) {
		t.Fatal("Bytes returned an aliased slice")
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	d := Hash([]byte("sign me"))
	sig, err := kp.SignDigest(d)
	if err != nil {
		t.Fatalf("SignDigest: %v", err)
	}
	if !kp.Public().VerifyDigest(d, sig) {
		t.Fatal("valid signature rejected")
	}
	other := Hash([]byte("different message"))
	if kp.Public().VerifyDigest(other, sig) {
		t.Fatal("signature accepted for wrong digest")
	}
	kp2, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	if kp2.Public().VerifyDigest(d, sig) {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestPublicKeySerialization(t *testing.T) {
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	der, err := kp.Public().Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	parsed, err := ParsePublicKey(der)
	if err != nil {
		t.Fatalf("ParsePublicKey: %v", err)
	}
	d := Hash([]byte("serialize"))
	sig, err := kp.SignDigest(d)
	if err != nil {
		t.Fatalf("SignDigest: %v", err)
	}
	if !parsed.VerifyDigest(d, sig) {
		t.Fatal("parsed key does not verify signature")
	}
	if _, err := ParsePublicKey([]byte("junk")); err == nil {
		t.Fatal("junk accepted as public key")
	}
}

func TestVerifyNilKey(t *testing.T) {
	var pk PublicKey
	if pk.Verify([]byte("d"), []byte("s")) {
		t.Fatal("nil public key verified a signature")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	reg.Register("node0", kp.Public())

	if _, ok := reg.Lookup("node0"); !ok {
		t.Fatal("registered identity not found")
	}
	if _, ok := reg.Lookup("ghost"); ok {
		t.Fatal("unknown identity found")
	}

	d := Hash([]byte("registry"))
	sig, err := kp.SignDigest(d)
	if err != nil {
		t.Fatalf("SignDigest: %v", err)
	}
	if !reg.Verify("node0", d[:], sig) {
		t.Fatal("registry rejected valid signature")
	}
	if reg.Verify("ghost", d[:], sig) {
		t.Fatal("registry verified unknown identity")
	}

	reg.Register("alpha", kp.Public())
	names := reg.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "node0" {
		t.Fatalf("Names not sorted or wrong: %v", names)
	}

	reg.Remove("node0")
	if _, ok := reg.Lookup("node0"); ok {
		t.Fatal("removed identity still present")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			name := string(rune('a' + n))
			for j := 0; j < 100; j++ {
				reg.Register(name, kp.Public())
				reg.Lookup(name)
				reg.Names()
			}
		}(i)
	}
	wg.Wait()
	if got := len(reg.Names()); got != 8 {
		t.Fatalf("expected 8 identities, got %d", got)
	}
}
