package cryptoutil

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned by Sign calls issued after the pool was closed.
var ErrPoolClosed = errors.New("signing pool closed")

// signJob carries one digest to sign and the callback invoked with the
// resulting signature.
type signJob struct {
	digest Digest
	done   func(sig []byte, err error)
}

// SigningPool signs digests on a fixed set of worker goroutines. It models
// the "signing & sending threads" of the BFT-SMaRt ordering node
// (Figure 5 of the paper): block headers are produced sequentially by the
// node thread and handed to the pool, which parallelizes the expensive
// ECDSA signature generation. Figure 6 of the paper is a throughput sweep
// over the number of workers in this pool.
type SigningPool struct {
	key     *KeyPair
	jobs    chan signJob
	wg      sync.WaitGroup
	closed  atomic.Bool
	signed  atomic.Uint64
	workers int

	mu sync.Mutex // serializes Close against Sign enqueues
}

// NewSigningPool starts a pool with the given number of workers. The job
// queue is bounded at twice the worker count: producers block when all
// workers are busy, which provides natural backpressure from the signing
// stage to the block-cutting stage (the paper's node thread behaves the same
// way: it cannot outrun its signing pool indefinitely).
func NewSigningPool(key *KeyPair, workers int) (*SigningPool, error) {
	if key == nil {
		return nil, errors.New("signing pool requires a key pair")
	}
	if workers < 1 {
		return nil, fmt.Errorf("signing pool requires at least 1 worker, got %d", workers)
	}
	p := &SigningPool{
		key:     key,
		jobs:    make(chan signJob, workers*2),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p, nil
}

func (p *SigningPool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		sig, err := p.key.SignDigest(job.digest)
		if err == nil {
			p.signed.Add(1)
		}
		job.done(sig, err)
	}
}

// Sign enqueues digest for signing; done is invoked from a worker goroutine
// with the signature (or error). Sign blocks while the queue is full and
// returns ErrPoolClosed after Close.
func (p *SigningPool) Sign(digest Digest, done func(sig []byte, err error)) error {
	if done == nil {
		return errors.New("signing pool: nil completion callback")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return ErrPoolClosed
	}
	p.jobs <- signJob{digest: digest, done: done}
	return nil
}

// SignSync signs digest and waits for the result.
func (p *SigningPool) SignSync(digest Digest) ([]byte, error) {
	type result struct {
		sig []byte
		err error
	}
	ch := make(chan result, 1)
	if err := p.Sign(digest, func(sig []byte, err error) {
		ch <- result{sig: sig, err: err}
	}); err != nil {
		return nil, err
	}
	res := <-ch
	return res.sig, res.err
}

// Workers returns the number of worker goroutines.
func (p *SigningPool) Workers() int {
	return p.workers
}

// Signed returns the total number of signatures generated so far. The
// Figure 6 harness samples this counter to compute signatures/second.
func (p *SigningPool) Signed() uint64 {
	return p.signed.Load()
}

// Close stops accepting work, waits for in-flight jobs to finish, and
// releases the workers. Close is idempotent.
func (p *SigningPool) Close() {
	p.mu.Lock()
	if p.closed.Swap(true) {
		p.mu.Unlock()
		return
	}
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
