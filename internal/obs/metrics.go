package obs

import "sync"

// Domain bundles: one struct of instruments per subsystem, created against
// a registry with identifying labels (node, shard, ...). A nil registry
// yields a nil bundle; callers normalize once with OrNop() and then use the
// fields unconditionally — nil instruments discard updates, so the disabled
// path is a nil check per call and nothing else.

// StorageMetrics instruments the unified commit log: group-commit waves,
// fsyncs, WAL segments and bytes, checkpointing, and retention.
type StorageMetrics struct {
	WaveTotal          *Counter
	WaveSize           *Histogram
	WaveFailures       *Counter
	FsyncTotal         *Counter
	FsyncSeconds       *Histogram
	BytesWritten       *Counter
	SegmentRotations   *Counter
	Segments           *Gauge
	CheckpointSaved    *Counter
	CheckpointDeferred *Counter
	PruneTotal         *Counter
	LogPoisoned        *Counter
	ScrubPasses        *Counter
	ScrubCorrupt       *Counter
	RepairedBlocks     *Counter
}

// NewStorageMetrics registers the storage instrument set under the given
// label pairs. Returns nil when r is nil.
func NewStorageMetrics(r *Registry, kv ...string) *StorageMetrics {
	if r == nil {
		return nil
	}
	return &StorageMetrics{
		WaveTotal:          r.Counter(Name("repro_storage_wave_total", kv...), "Group-commit waves flushed."),
		WaveSize:           r.Histogram(Name("repro_storage_wave_size", kv...), "Records committed per group-commit wave.", SizeBuckets()),
		WaveFailures:       r.Counter(Name("repro_storage_wave_failures_total", kv...), "Group-commit waves that failed to write or sync."),
		FsyncTotal:         r.Counter(Name("repro_wal_fsync_total", kv...), "WAL fsync (fdatasync) calls."),
		FsyncSeconds:       r.Histogram(Name("repro_wal_fsync_seconds", kv...), "WAL fsync latency in seconds.", nil),
		BytesWritten:       r.Counter(Name("repro_wal_bytes_written_total", kv...), "Bytes appended to the WAL."),
		SegmentRotations:   r.Counter(Name("repro_wal_segment_rotations_total", kv...), "WAL segment rotations."),
		Segments:           r.Gauge(Name("repro_wal_segments", kv...), "Live WAL segment files."),
		CheckpointSaved:    r.Counter(Name("repro_storage_checkpoint_saved_total", kv...), "Consensus checkpoints saved to disk."),
		CheckpointDeferred: r.Counter(Name("repro_storage_checkpoint_deferred_total", kv...), "Checkpoint saves deferred by the persist-watermark gate."),
		PruneTotal:         r.Counter(Name("repro_storage_prune_total", kv...), "Retention prune passes that reclaimed segments."),
		LogPoisoned:        r.Counter(Name("repro_storage_log_poisoned_total", kv...), "Commit-log poisonings after a failed wave fsync (fail-fast; at most 1)."),
		ScrubPasses:        r.Counter(Name("repro_storage_scrub_passes_total", kv...), "Completed background scrub passes over the retained log."),
		ScrubCorrupt:       r.Counter(Name("repro_storage_scrub_corrupt_total", kv...), "Corrupt records found by the scrubber."),
		RepairedBlocks:     r.Counter(Name("repro_storage_repaired_blocks_total", kv...), "Corrupt block records repaired from verified peer copies."),
	}
}

// OrNop returns an all-nil bundle when m is nil so field access is safe.
func (m *StorageMetrics) OrNop() *StorageMetrics {
	if m == nil {
		return &StorageMetrics{}
	}
	return m
}

// NodeMetrics instruments the ordering node's hot path: the per-stage
// latency trace from client broadcast to block dissemination, sealed
// blocks, and the per-channel persist watermark. It keeps the registry so
// the node can hang per-channel gauges and scrape-time gauge functions
// (consensus stats, watermark minimum) off the same label set.
type NodeMetrics struct {
	StageDecide      *Histogram // client broadcast -> consensus decided (block sealed)
	StageFsync       *Histogram // decided -> decision durable on the send drain
	StageDisseminate *Histogram // durable -> block handed to dissemination
	BlocksSealed     *Counter
	DisseminatedLag  *Gauge // unix nanos of the last dissemination, for lag probes

	reg *Registry
	kv  []string

	mu         sync.Mutex
	watermarks map[string]*Gauge
}

// NewNodeMetrics registers the node instrument set. Returns nil when r is nil.
func NewNodeMetrics(r *Registry, kv ...string) *NodeMetrics {
	if r == nil {
		return nil
	}
	return &NodeMetrics{
		StageDecide:      r.Histogram(Name("repro_stage_decide_seconds", kv...), "Client broadcast to consensus decision (block sealed).", nil),
		StageFsync:       r.Histogram(Name("repro_stage_fsync_seconds", kv...), "Consensus decision to decision-record durability on the send drain.", nil),
		StageDisseminate: r.Histogram(Name("repro_stage_disseminate_seconds", kv...), "Decision durability to block dissemination.", nil),
		BlocksSealed:     r.Counter(Name("repro_node_blocks_sealed_total", kv...), "Blocks cut and sealed by this node."),
		DisseminatedLag:  r.Gauge(Name("repro_node_last_disseminate_unixnano", kv...), "Unix nanos of the most recent block dissemination."),
		reg:              r,
		kv:               kv,
	}
}

// OrNop returns an all-nil bundle when m is nil so field access is safe.
func (m *NodeMetrics) OrNop() *NodeMetrics {
	if m == nil {
		return &NodeMetrics{}
	}
	return m
}

// Watermark returns (registering on first use) the persist-watermark gauge
// for a channel, labeled with the bundle's labels plus the channel. Nil for
// a nop bundle.
func (m *NodeMetrics) Watermark(channel string) *Gauge {
	if m == nil || m.reg == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok := m.watermarks[channel]; ok {
		return g
	}
	kv := append(append([]string{}, m.kv...), "channel", channel)
	g := m.reg.Gauge(Name("repro_node_persist_watermark", kv...),
		"Per-channel persist watermark: every block below it is durable on this node.")
	if m.watermarks == nil {
		m.watermarks = make(map[string]*Gauge)
	}
	m.watermarks[channel] = g
	return g
}

// GaugeFunc registers a scrape-time gauge under the bundle's labels.
func (m *NodeMetrics) GaugeFunc(family, help string, fn func() float64) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.GaugeFunc(Name(family, m.kv...), help, fn)
}

// FrontendMetrics instruments the frontend's release path: the tail of the
// stage trace (dissemination to 2f+1/f+1 release, and the full broadcast to
// deliver span), released blocks/envelopes, and the backpressure window.
type FrontendMetrics struct {
	StageDeliver *Histogram // dissemination -> released at this frontend
	StageTotal   *Histogram // client broadcast -> released at this frontend
	Blocks       *Counter
	Envelopes    *Counter

	reg *Registry
	kv  []string
}

// NewFrontendMetrics registers the frontend instrument set. Returns nil
// when r is nil.
func NewFrontendMetrics(r *Registry, kv ...string) *FrontendMetrics {
	if r == nil {
		return nil
	}
	return &FrontendMetrics{
		StageDeliver: r.Histogram(Name("repro_stage_deliver_seconds", kv...), "Block dissemination to quorum release at the frontend.", nil),
		StageTotal:   r.Histogram(Name("repro_stage_total_seconds", kv...), "Client broadcast to quorum release at the frontend (end to end).", nil),
		Blocks:       r.Counter(Name("repro_frontend_blocks_total", kv...), "Blocks released after meeting the signature quorum."),
		Envelopes:    r.Counter(Name("repro_frontend_envelopes_total", kv...), "Envelopes in released blocks."),
		reg:          r,
		kv:           kv,
	}
}

// OrNop returns an all-nil bundle when m is nil so field access is safe.
func (m *FrontendMetrics) OrNop() *FrontendMetrics {
	if m == nil {
		return &FrontendMetrics{}
	}
	return m
}

// GaugeFunc registers a scrape-time gauge under the bundle's labels.
func (m *FrontendMetrics) GaugeFunc(family, help string, fn func() float64) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.GaugeFunc(Name(family, m.kv...), help, fn)
}

// ClientAPIMetrics instruments the TCP client surface: connection churn and
// live deliver streams.
type ClientAPIMetrics struct {
	Connections      *Gauge
	ConnectionsTotal *Counter
	DeliverStreams   *Gauge
	Broadcasts       *Counter
}

// NewClientAPIMetrics registers the clientapi instrument set. Returns nil
// when r is nil.
func NewClientAPIMetrics(r *Registry, kv ...string) *ClientAPIMetrics {
	if r == nil {
		return nil
	}
	return &ClientAPIMetrics{
		Connections:      r.Gauge(Name("repro_clientapi_connections", kv...), "Open client connections."),
		ConnectionsTotal: r.Counter(Name("repro_clientapi_connections_total", kv...), "Client connections accepted since start."),
		DeliverStreams:   r.Gauge(Name("repro_clientapi_deliver_streams", kv...), "Live Deliver streams."),
		Broadcasts:       r.Counter(Name("repro_clientapi_broadcasts_total", kv...), "Broadcast envelopes received over the client API."),
	}
}

// OrNop returns an all-nil bundle when m is nil so field access is safe.
func (m *ClientAPIMetrics) OrNop() *ClientAPIMetrics {
	if m == nil {
		return &ClientAPIMetrics{}
	}
	return m
}

// CrossShardMetrics instruments the two-phase cross-shard path.
type CrossShardMetrics struct {
	Marked     *Counter
	Committed  *Counter
	Aborted    *Counter
	MarkFailed *Counter
}

// NewCrossShardMetrics registers the cross-shard instrument set. Returns
// nil when r is nil.
func NewCrossShardMetrics(r *Registry, kv ...string) *CrossShardMetrics {
	if r == nil {
		return nil
	}
	return &CrossShardMetrics{
		Marked:     r.Counter(Name("repro_cross_shard_marked_total", kv...), "Cross-shard transactions that marked every participant channel."),
		Committed:  r.Counter(Name("repro_cross_shard_committed_total", kv...), "Cross-shard transactions committed in every participant channel."),
		Aborted:    r.Counter(Name("repro_cross_shard_aborted_total", kv...), "Cross-shard transactions aborted before commit."),
		MarkFailed: r.Counter(Name("repro_cross_shard_mark_failed_total", kv...), "Cross-shard mark phases that failed on some participant."),
	}
}

// OrNop returns an all-nil bundle when m is nil so field access is safe.
func (m *CrossShardMetrics) OrNop() *CrossShardMetrics {
	if m == nil {
		return &CrossShardMetrics{}
	}
	return m
}
