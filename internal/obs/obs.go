// Package obs is the stack's zero-dependency observability layer: atomic
// counters and gauges, lock-cheap fixed-bucket histograms, and scrape-time
// gauge functions behind a Registry, exposed over HTTP in Prometheus text
// format and JSON (http.go) and bundled into per-subsystem metric sets
// (metrics.go).
//
// Every instrument is nil-receiver safe: code paths hold plain pointers and
// call Inc/Add/Observe unconditionally; when metrics are disabled the
// pointers are nil and the calls are a single branch with zero allocations
// (guarded by BenchmarkObsOverhead). Registries are likewise nil-safe, so a
// subsystem constructed without a registry gets nil instruments for free.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric type names as exposed in Prometheus TYPE comments.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. The zero value is ready to use; a nil Gauge
// discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add increments (or decrements, with negative n) the value.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets with atomic adds; the
// running sum is a CAS loop over float64 bits. Bounds are upper bounds in
// ascending order; an implicit +Inf bucket catches the overflow. A nil
// Histogram discards all observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample. NaN samples are dropped so a poisoned input
// can never corrupt the running sum.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus base unit).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot returns the bucket upper bounds and per-bucket (non-cumulative)
// counts; the final count is the +Inf bucket.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-th quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the target rank. Values in the +Inf bucket
// report the largest finite bound. Returns 0 without observations.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, counts := h.Snapshot()
	return bucketQuantile(q, bounds, counts)
}

func bucketQuantile(q float64, bounds []float64, counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range counts {
		prev := seen
		seen += float64(c)
		if seen < rank {
			continue
		}
		if i >= len(bounds) { // +Inf bucket
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	return bounds[len(bounds)-1]
}

// ExponentialBuckets returns n upper bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// LinearBuckets returns n upper bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start += width
	}
	return b
}

// DurationBuckets are the default latency bounds in seconds: 1µs to ~42s
// exponentially (×2 per bucket, 26 buckets including the implicit +Inf
// overflow above ~33.5s).
func DurationBuckets() []float64 {
	return ExponentialBuckets(1e-6, 2, 25)
}

// SizeBuckets are the default count-shaped bounds (wave sizes, batch
// sizes): powers of two from 1 to 4096.
func SizeBuckets() []float64 {
	return ExponentialBuckets(1, 2, 13)
}

// metric is one registered instrument plus its exposition metadata.
type metric struct {
	name   string // full name including any {label="v"} suffix
	help   string
	typ    string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	gaugeF func() float64
}

// Registry holds named instruments and renders them for exposition. A nil
// Registry returns nil instruments from every constructor, which silently
// discard updates — disabling metrics is just not creating a registry.
//
// Names carry Prometheus labels inline: Name("repro_wal_fsync_total",
// "node", "3") registers `repro_wal_fsync_total{node="3"}`. Registering the
// same full name twice returns the existing instrument (a restarted node
// re-attaches to its metrics rather than double-registering).
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Name composes a family name and label key/value pairs into a full metric
// name: Name("x_total", "shard", "0", "node", "1") -> `x_total{shard="0",node="1"}`.
func Name(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name, help, typ string) (*metric, bool) {
	if m, ok := r.metrics[name]; ok {
		return m, true
	}
	m := &metric{name: name, help: help, typ: typ}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m, false
}

// Counter registers (or re-attaches to) a counter under the full name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, help, TypeCounter)
	if !existed {
		m.ctr = &Counter{}
	}
	return m.ctr
}

// Gauge registers (or re-attaches to) a gauge under the full name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, help, TypeGauge)
	if !existed {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram registers (or re-attaches to) a histogram with the given upper
// bounds (DurationBuckets() when nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, help, TypeHistogram)
	if !existed {
		m.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return m.hist
}

// GaugeFunc registers a gauge whose value is computed at scrape time; a
// second registration under the same name replaces the function (a
// restarted node's closures must read the live node, not the dead one).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.lookup(name, help, TypeGauge)
	m.gaugeF = fn
}

// Point is one instrument's state at gather time.
type Point struct {
	Labels string  `json:"labels,omitempty"` // `k="v",...` without braces
	Value  float64 `json:"value"`            // counter/gauge value, histogram sum
	Count  uint64  `json:"count,omitempty"`  // histogram observation count
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"` // per-bucket, non-cumulative; last is +Inf
}

// Quantile estimates a quantile from the point's histogram buckets.
func (p Point) Quantile(q float64) float64 { return bucketQuantile(q, p.Bounds, p.Counts) }

// Family groups every labeled point that shares one metric name.
type Family struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Type   string  `json:"type"`
	Points []Point `json:"points"`
}

// Quantile estimates a quantile from all of the family's histogram points
// merged (bucket bounds must match, which they do for bundle-created
// instruments).
func (f Family) Quantile(q float64) float64 {
	var bounds []float64
	var merged []uint64
	for _, p := range f.Points {
		if len(p.Counts) == 0 {
			continue
		}
		if merged == nil {
			bounds = p.Bounds
			merged = make([]uint64, len(p.Counts))
		}
		if len(p.Counts) != len(merged) {
			continue
		}
		for i, c := range p.Counts {
			merged[i] += c
		}
	}
	return bucketQuantile(q, bounds, merged)
}

// Count sums the observation counts of all histogram points in the family.
func (f Family) Count() uint64 {
	var n uint64
	for _, p := range f.Points {
		n += p.Count
	}
	return n
}

// splitName separates a full metric name into family and label suffix.
func splitName(full string) (family, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 && strings.HasSuffix(full, "}") {
		return full[:i], full[i+1 : len(full)-1]
	}
	return full, ""
}

// Gather snapshots every registered instrument, grouped into families in
// registration order. Gauge functions are evaluated here.
func (r *Registry) Gather() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, 0, len(r.order))
	for _, name := range r.order {
		metrics = append(metrics, r.metrics[name])
	}
	r.mu.Unlock()

	var families []Family
	index := make(map[string]int)
	for _, m := range metrics {
		family, labels := splitName(m.name)
		p := Point{Labels: labels}
		switch {
		case m.ctr != nil:
			p.Value = float64(m.ctr.Value())
		case m.gaugeF != nil:
			p.Value = m.gaugeF()
		case m.gauge != nil:
			p.Value = float64(m.gauge.Value())
		case m.hist != nil:
			p.Bounds, p.Counts = m.hist.Snapshot()
			p.Count = m.hist.Count()
			p.Value = m.hist.Sum()
		}
		i, ok := index[family]
		if !ok {
			i = len(families)
			index[family] = i
			families = append(families, Family{Name: family, Help: m.help, Type: m.typ})
		}
		families[i].Points = append(families[i].Points, p)
	}
	return families
}

// Family returns the gathered family with the given name, or a zero Family.
func (r *Registry) Family(name string) Family {
	for _, f := range r.Gather() {
		if f.Name == name {
			return f
		}
	}
	return Family{}
}
