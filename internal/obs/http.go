package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per family, cumulative _bucket
// series with an le label for histograms, plus _sum and _count.
func WriteText(b *strings.Builder, families []Family) {
	for _, f := range families {
		if f.Help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, p := range f.Points {
			if f.Type != TypeHistogram {
				b.WriteString(f.Name)
				if p.Labels != "" {
					b.WriteByte('{')
					b.WriteString(p.Labels)
					b.WriteByte('}')
				}
				b.WriteByte(' ')
				b.WriteString(formatValue(p.Value))
				b.WriteByte('\n')
				continue
			}
			var cum uint64
			for i, c := range p.Counts {
				cum += c
				le := "+Inf"
				if i < len(p.Bounds) {
					le = formatValue(p.Bounds[i])
				}
				b.WriteString(f.Name)
				b.WriteString("_bucket{")
				if p.Labels != "" {
					b.WriteString(p.Labels)
					b.WriteByte(',')
				}
				fmt.Fprintf(b, "le=%q} %d\n", le, cum)
			}
			writeSeries(b, f.Name+"_sum", p.Labels, formatValue(p.Value))
			writeSeries(b, f.Name+"_count", p.Labels, strconv.FormatUint(p.Count, 10))
		}
	}
}

func writeSeries(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at its mount point: Prometheus text by
// default, JSON with ?format=json.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		families := r.Gather()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(families)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		WriteText(&b, families)
		w.Write([]byte(b.String()))
	})
}

// NewMux builds the debug mux: /metrics plus the full net/http/pprof
// surface under /debug/pprof/ (wired explicitly — the package's implicit
// DefaultServeMux registration is useless on a private mux).
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the metrics/pprof endpoint on addr in a background goroutine
// and returns the bound listener (so addr may use port 0). The caller owns
// the listener; closing it stops the server.
func Serve(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(r)}
	go srv.Serve(ln)
	return ln, nil
}
