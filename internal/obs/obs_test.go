package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines; totals must be exact (run under -race in CI).
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(workers*per*3); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), int64(workers*per); got != want {
		t.Fatalf("gauge = %d, want %d", got, want)
	}
}

// TestHistogramConcurrent checks count/sum/bucket totals stay exact under
// concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "test histogram", []float64{1, 2, 4})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5) // bucket le=1
				h.Observe(3)   // bucket le=4
				h.Observe(100) // +Inf
			}
		}()
	}
	wg.Wait()
	total := uint64(workers * per * 3)
	if h.Count() != total {
		t.Fatalf("count = %d, want %d", h.Count(), total)
	}
	wantSum := float64(workers*per) * (0.5 + 3 + 100)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	_, counts := h.Snapshot()
	want := []uint64{workers * per, 0, workers * per, workers * per}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	h.Observe(math.NaN())
	h.Observe(0.5)
	if h.Count() != 1 || math.IsNaN(h.Sum()) {
		t.Fatalf("NaN observation leaked: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestPrometheusTextGolden pins the exposition format byte for byte.
func TestPrometheusTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("repro_wal_fsync_total", "node", "0"), "WAL fsync calls.").Add(42)
	r.Counter(Name("repro_wal_fsync_total", "node", "1"), "WAL fsync calls.").Add(7)
	r.Gauge("repro_live", "Liveness flag.").Set(1)
	h := r.Histogram(Name("repro_wave_size", "node", "0"), "Wave sizes.", []float64{1, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	r.GaugeFunc("repro_watermark", "Watermark.", func() float64 { return 12 })

	var b strings.Builder
	WriteText(&b, r.Gather())
	want := `# HELP repro_wal_fsync_total WAL fsync calls.
# TYPE repro_wal_fsync_total counter
repro_wal_fsync_total{node="0"} 42
repro_wal_fsync_total{node="1"} 7
# HELP repro_live Liveness flag.
# TYPE repro_live gauge
repro_live 1
# HELP repro_wave_size Wave sizes.
# TYPE repro_wave_size histogram
repro_wave_size_bucket{node="0",le="1"} 1
repro_wave_size_bucket{node="0",le="4"} 2
repro_wave_size_bucket{node="0",le="+Inf"} 3
repro_wave_size_sum{node="0"} 13
repro_wave_size_count{node="0"} 3
# HELP repro_watermark Watermark.
# TYPE repro_watermark gauge
repro_watermark 12
`
	if got := b.String(); got != want {
		t.Fatalf("text exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryReattach(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	a.Add(5)
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registration did not return the existing counter")
	}
	if b.Value() != 5 {
		t.Fatalf("reattached counter lost its value: %d", b.Value())
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", LinearBuckets(10, 10, 10)) // 10..100
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if p50 := h.Quantile(0.50); p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 90 || p99 > 100 {
		t.Fatalf("p99 = %v, want ~99", p99)
	}
	// Family-level merge across two labeled points.
	h2 := r.Histogram(Name("fq", "n", "0"), "", LinearBuckets(10, 10, 10))
	h3 := r.Histogram(Name("fq", "n", "1"), "", LinearBuckets(10, 10, 10))
	for i := 1; i <= 50; i++ {
		h2.Observe(float64(i))
		h3.Observe(float64(i + 50))
	}
	f := r.Family("fq")
	if f.Count() != 100 {
		t.Fatalf("family count = %d, want 100", f.Count())
	}
	if p50 := f.Quantile(0.50); p50 < 40 || p50 > 60 {
		t.Fatalf("merged p50 = %v, want ~50", p50)
	}
}

// TestObsDisabledZeroAlloc proves the disabled path (nil registry -> nil
// instruments) allocates nothing on the hot path.
func TestObsDisabledZeroAlloc(t *testing.T) {
	var r *Registry
	m := NewStorageMetrics(r).OrNop()
	n := NewNodeMetrics(r).OrNop()
	allocs := testing.AllocsPerRun(1000, func() {
		m.FsyncTotal.Inc()
		m.WaveSize.Observe(17)
		m.FsyncSeconds.ObserveDuration(3 * time.Millisecond)
		n.BlocksSealed.Add(2)
		n.Watermark("ch").Set(9)
		n.StageDecide.ObserveDuration(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics path allocated %v times per op, want 0", allocs)
	}
}

// TestObsEnabledZeroAlloc proves the enabled fast path (pre-registered
// instruments) is also allocation-free per update.
func TestObsEnabledZeroAlloc(t *testing.T) {
	r := NewRegistry()
	m := NewStorageMetrics(r, "node", "0").OrNop()
	allocs := testing.AllocsPerRun(1000, func() {
		m.FsyncTotal.Inc()
		m.WaveSize.Observe(17)
		m.FsyncSeconds.ObserveDuration(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled metrics path allocated %v times per op, want 0", allocs)
	}
}

// BenchmarkObsOverhead is the CI alloc guard: 0 allocs/op for both the
// disabled (nil) and enabled instrument paths.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		m := (*StorageMetrics)(nil).OrNop()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.FsyncTotal.Inc()
			m.WaveSize.Observe(float64(i & 1023))
			m.FsyncSeconds.ObserveDuration(time.Microsecond)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		r := NewRegistry()
		m := NewStorageMetrics(r, "node", "0").OrNop()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.FsyncTotal.Inc()
			m.WaveSize.Observe(float64(i & 1023))
			m.FsyncSeconds.ObserveDuration(time.Microsecond)
		}
	})
}
