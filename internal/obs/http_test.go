package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestHTTPScrape starts the real endpoint on a loopback port and scrapes
// /metrics (text and JSON) and the pprof surface.
func TestHTTPScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("repro_wal_fsync_total", "node", "0"), "WAL fsync calls.").Add(3)
	h := r.Histogram(Name("repro_storage_wave_size", "node", "0"), "Wave sizes.", SizeBuckets())
	h.Observe(4)
	r.GaugeFunc(Name("repro_node_persist_watermark_min", "node", "0"), "Min watermark.", func() float64 { return 7 })

	ln, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := fmt.Sprintf("http://%s", ln.Addr())

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	text, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		`repro_wal_fsync_total{node="0"} 3`,
		`repro_storage_wave_size_bucket{node="0",le="4"} 1`,
		`repro_storage_wave_size_count{node="0"} 1`,
		`repro_node_persist_watermark_min{node="0"} 7`,
		"# TYPE repro_storage_wave_size histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	jsonBody, ctype := get("/metrics?format=json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("json content type = %q", ctype)
	}
	var families []Family
	if err := json.Unmarshal([]byte(jsonBody), &families); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if len(families) != 3 {
		t.Fatalf("json families = %d, want 3", len(families))
	}

	idx, _ := get("/debug/pprof/")
	if !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing goroutine profile:\n%s", idx)
	}
	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline returned empty body")
	}
}
