package chaos

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/storage/faultfs"
	"repro/internal/storage/vfs"
	"repro/internal/transport"
)

// InvariantResult is one invariant's verdict for a run.
type InvariantResult struct {
	Name   string   `json:"name"`
	Pass   bool     `json:"pass"`
	Detail []string `json:"detail,omitempty"`
}

// Result is one scenario run's outcome: the per-invariant verdicts plus the
// commit-latency profile the load observed while the faults played out.
type Result struct {
	Scenario    string            `json:"scenario"`
	Description string            `json:"description"`
	Seed        uint64            `json:"seed"`
	Pass        bool              `json:"pass"`
	Invariants  []InvariantResult `json:"invariants"`
	P50Ms       float64           `json:"p50_ms"`
	P99Ms       float64           `json:"p99_ms"`
	Delivered   uint64            `json:"delivered_envelopes"`
	Blocks      uint64            `json:"blocks"`
	DurationSec float64           `json:"duration_sec"`
	// DurableFraction is this scenario's delivered throughput as a fraction
	// of the fault-free baseline's, filled in by cmd/chaosbench after both
	// ran (zero when no baseline was available for comparison).
	DurableFraction float64 `json:"durable_fraction,omitempty"`
}

// Options tunes a run without changing the scenario's identity.
type Options struct {
	// Scale multiplies the scenario duration (CI smoke runs use < 1).
	// Zero means 1.
	Scale float64
	// DataDir hosts the nodes' durable state; empty uses a temp dir that
	// is removed at teardown.
	DataDir string
	// Inspect, when set, runs against the live environment after final
	// invariants and before teardown (test hook).
	Inspect func(e *Env)
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

type loadKey struct {
	client string
	seq    uint64
}

// Run executes one scenario: build the world, start invariants, inject
// faults under load for the scenario duration, quiesce, then evaluate the
// final invariants. The error return is for harness failures (could not
// build the cluster); invariant violations fail the Result, not the call.
func Run(s Scenario, opts Options) (Result, error) {
	s = s.withDefaults()
	if opts.Scale > 0 {
		s.Duration = time.Duration(float64(s.Duration) * opts.Scale)
	}
	if s.Shards > 0 {
		return runSharded(s, opts)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dataDir := opts.DataDir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "chaos-"+s.Name+"-*")
		if err != nil {
			return Result{}, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}

	network := transport.NewInProcNetwork(transport.InProcConfig{})
	defer network.Close()
	registry := obs.NewRegistry()
	// Disk-fault scenarios run every node's storage on a fault-injecting
	// filesystem; each is a passthrough until a fault arms it mid-run. The
	// factory hands a restarted node its original instance, so armed faults
	// survive crash-recovery.
	var nodeFS []*faultfs.FS
	var nodeFSFor func(node int) vfs.FS
	if s.DiskFaults {
		nodeFS = make([]*faultfs.FS, s.Nodes)
		for i := range nodeFS {
			nodeFS[i] = faultfs.New(nil, int64(s.Seed)+int64(i)*97)
		}
		nodeFSFor = func(node int) vfs.FS {
			if node < 0 || node >= len(nodeFS) {
				return nil // nodes joining mid-run use the real filesystem
			}
			return nodeFS[node]
		}
	}
	cluster, err := core.NewCluster(core.ClusterConfig{
		Nodes:              s.Nodes,
		BlockSize:          s.BlockSize,
		BlockTimeout:       150 * time.Millisecond,
		RequestTimeout:     s.RequestTimeout,
		CheckpointInterval: s.CheckpointInterval,
		RetainBlocks:       s.RetainBlocks,
		Network:            network,
		DataDir:            dataDir,
		Metrics:            registry,
		NodeFS:             nodeFSFor,
		ScrubInterval:      s.ScrubInterval,
	})
	if err != nil {
		return Result{}, fmt.Errorf("chaos %s: %w", s.Name, err)
	}
	defer cluster.Stop()

	observer, err := cluster.NewFrontend("chaos-observer", true)
	if err != nil {
		return Result{}, fmt.Errorf("chaos %s: observer: %w", s.Name, err)
	}
	defer observer.Close()
	loadFE, err := cluster.NewFrontend("chaos-load", false)
	if err != nil {
		return Result{}, fmt.Errorf("chaos %s: load frontend: %w", s.Name, err)
	}
	defer loadFE.Close()

	e := &Env{
		Scenario:     s,
		Network:      network,
		Cluster:      cluster,
		Observer:     observer,
		LoadFE:       loadFE,
		Channel:      "chaos",
		F:            consensus.MaxFaults(s.Nodes),
		Metrics:      registry,
		done:         make(chan struct{}),
		epochs:       make([]int, s.Nodes),
		violations:   make(map[string][]string),
		faultFS:      nodeFS,
		ackPending:   make(map[loadKey]bool),
		ackDelivered: make(map[loadKey]bool),
	}

	// The observer's release path is the measurement point: it extends
	// the canonical chain and records broadcast→release latency for the
	// load's envelopes.
	recorder := bench.NewLatencyRecorder()
	var delivered atomic.Uint64
	var times sync.Map
	observer.OnBlock(func(b *fabric.Block) {
		now := time.Now()
		e.appendCanon(b)
		for _, raw := range b.Envelopes {
			client, seq, ok := bench.EnvelopeSeq(raw)
			if !ok {
				continue
			}
			delivered.Add(1)
			e.noteDelivered(loadKey{client, seq})
			if v, loaded := times.LoadAndDelete(loadKey{client, seq}); loaded {
				if start, isTime := v.(time.Time); isTime {
					recorder.Record(now.Sub(start))
				}
			}
		}
	})

	for _, inv := range s.Invariants {
		if err := inv.Start(e); err != nil {
			return Result{}, fmt.Errorf("chaos %s: invariant %s: %w", s.Name, inv.Name, err)
		}
	}
	for _, f := range s.Faults {
		fault := f
		e.Go(func() {
			if err := fault.Run(e); err != nil {
				e.Violate("fault:"+fault.Name, "%v", err)
			}
		})
	}
	for i := 0; i < s.Load.Clients; i++ {
		client := fmt.Sprintf("chaos-%d", i)
		gen := bench.NewEnvelopeGen(e.Channel, client, s.Load.EnvBytes, int64(s.Seed)+int64(i))
		e.Go(func() {
			for {
				select {
				case <-e.Done():
					return
				default:
				}
				raw, seq := gen.Next()
				key := loadKey{client: client, seq: seq}
				times.Store(key, time.Now())
				switch st := e.LoadFE.BroadcastRaw(raw); st {
				case fabric.StatusSuccess:
					e.noteAcked(key)
				case fabric.StatusServiceUnavailable:
					times.Delete(key) // backpressure or teardown: drop the sample
					time.Sleep(20 * time.Millisecond)
				default:
					times.Delete(key)
					e.Violate("load", "broadcast answered %v", st)
					return
				}
				time.Sleep(s.Load.Pace)
			}
		})
	}

	logf("chaos %s: injecting for %v (seed %d)", s.Name, s.Duration, s.Seed)
	start := time.Now()
	time.Sleep(s.Duration)
	close(e.done)
	e.wg.Wait()

	// Quiesce: wait for in-flight envelopes to drain through the observer
	// (bounded — a dropped dissemination copy may strand a tail block).
	quiesceDeadline := time.Now().Add(10 * time.Second)
	lastCount := delivered.Load()
	lastChange := time.Now()
	for time.Now().Before(quiesceDeadline) {
		time.Sleep(100 * time.Millisecond)
		if n := delivered.Load(); n != lastCount {
			lastCount, lastChange = n, time.Now()
		} else if time.Since(lastChange) > time.Second {
			break
		}
	}
	elapsed := time.Since(start)

	for _, inv := range s.Invariants {
		inv.Stop(e)
	}
	if opts.Inspect != nil {
		opts.Inspect(e)
	}

	res := Result{
		Scenario:    s.Name,
		Description: s.Description,
		Seed:        s.Seed,
		Pass:        true,
		P50Ms:       float64(recorder.Percentile(50).Microseconds()) / 1000,
		P99Ms:       float64(recorder.Percentile(99).Microseconds()) / 1000,
		Delivered:   delivered.Load(),
		Blocks:      e.CanonHeight(),
		DurationSec: elapsed.Seconds(),
	}
	seen := map[string]bool{}
	for _, inv := range s.Invariants {
		v := e.violationsFor(inv.Name)
		res.Invariants = append(res.Invariants, InvariantResult{
			Name:   inv.Name,
			Pass:   len(v) == 0,
			Detail: v,
		})
		seen[inv.Name] = true
		if len(v) > 0 {
			res.Pass = false
		}
	}
	// Fault errors and load failures surface as extra failed rows.
	e.mu.Lock()
	for name, v := range e.violations {
		if !seen[name] && len(v) > 0 {
			res.Invariants = append(res.Invariants, InvariantResult{Name: name, Pass: false, Detail: append([]string(nil), v...)})
			res.Pass = false
		}
	}
	e.mu.Unlock()
	logf("chaos %s: pass=%v delivered=%d blocks=%d p50=%.1fms p99=%.1fms",
		s.Name, res.Pass, res.Delivered, res.Blocks, res.P50Ms, res.P99Ms)
	return res, nil
}
