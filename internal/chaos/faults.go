package chaos

import (
	"fmt"
	"os"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wan"
)

// wanRegions is the round-robin placement WANFault assigns to replicas —
// the paper's geo evaluation sites.
var wanRegions = []wan.Region{wan.Oregon, wan.Ireland, wan.Sydney, wan.SaoPaulo}

// WANFault puts the whole run on a seeded wide-area network: replicas are
// placed round-robin across four continents, the observer and load
// frontends in Virginia and Canada, and every link gets the measured RTT
// with ±jitterPct% deterministic jitter. lossFrac additionally drops that
// fraction of node→frontend dissemination copies (the redundant path — the
// release rules must absorb it; consensus and client traffic is exempt so
// the scenario probes redundancy, not retransmission liveness).
func WANFault(jitterPct int, lossFrac float64) Fault {
	return Fault{
		Name: "wan",
		Run: func(e *Env) error {
			placement := make(map[transport.Addr]wan.Region)
			for i, id := range e.Cluster.Replicas() {
				placement[id.Addr()] = wanRegions[i%len(wanRegions)]
			}
			feTargets := map[transport.Addr]bool{
				transport.Addr(e.Observer.ID()): true,
				transport.Addr(e.LoadFE.ID()):   true,
			}
			placement[transport.Addr(e.Observer.ID())] = wan.Virginia
			placement[transport.Addr(e.Observer.ID()+"-client")] = wan.Virginia
			placement[transport.Addr(e.LoadFE.ID())] = wan.Canada
			placement[transport.Addr(e.LoadFE.ID()+"-client")] = wan.Canada
			e.Network.SetLatency(wan.NewModelSeeded(placement, jitterPct, e.Scenario.Seed))
			if lossFrac > 0 {
				loss := wan.NewLoss(lossFrac, e.Scenario.Seed+1, func(m transport.Message) bool {
					return !feTargets[m.To]
				})
				e.Network.SetDrop(loss.Drop)
			}
			<-e.Done()
			// Drop nothing during quiesce so the drain is bounded; the
			// latency model stays (it is the scenario's world, not a
			// transient fault).
			e.Network.SetDrop(nil)
			return nil
		},
	}
}

// PartitionFault splits the minority replicas from the rest of the cluster
// at atFrac of the scenario duration and heals at healFrac. Frontends stay
// connected to both sides.
func PartitionFault(minority []int, atFrac, healFrac float64) Fault {
	return Fault{
		Name: "partition",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			inMinority := make(map[int]bool, len(minority))
			var a []transport.Addr
			for _, i := range minority {
				inMinority[i] = true
				a = append(a, consensus.ReplicaID(i).Addr())
			}
			var b []transport.Addr
			for i := range e.Cluster.Replicas() {
				if !inMinority[i] {
					b = append(b, consensus.ReplicaID(i).Addr())
				}
			}
			e.Network.Partition(a, b)
			defer e.Network.Heal()
			if !after(e, frac(e, healFrac-atFrac)) {
				return nil
			}
			return nil
		},
	}
}

// CrashRestartFault kills node i mid-run and crash-recovers it from its
// data directory before the window closes. The restart happens even if the
// window closes first, so final invariants always see the node back.
func CrashRestartFault(node int, atFrac, restartFrac float64) Fault {
	return Fault{
		Name: "crash-restart",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			e.KillNode(node)
			after(e, frac(e, restartFrac-atFrac))
			if err := e.RestartNode(node); err != nil {
				return fmt.Errorf("restart node %d: %w", node, err)
			}
			return nil
		},
	}
}

// ByzantineFault turns node i byzantine at atFrac: behavior corrupts its
// consensus-layer messages (equivocating proposals, muteness), byz corrupts
// its ordering-layer service (equivocating dissemination, forged fetch
// history). The node stays byzantine for the rest of the run.
func ByzantineFault(node int, behavior consensus.Behavior, byz core.Byzantine, atFrac float64) Fault {
	return Fault{
		Name: "byzantine",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			n, _ := e.Node(node)
			if n == nil {
				return fmt.Errorf("node %d is down, cannot turn byzantine", node)
			}
			n.SetByzantine(byz)
			n.Replica().SetBehavior(behavior)
			return nil
		},
	}
}

// JoinFault grows the cluster by one node at atFrac of the run: a fresh
// identity boots from an empty data directory, is announced through an
// ordered ReconfigAdd, and must then catch up to the canonical height it
// was admitted at — via checkpoint state transfer plus verified block
// fetch from the peers' retention floor — while load continues. The fault
// fails if the join never converges or the newcomer never catches up.
func JoinFault(atFrac float64) Fault {
	return Fault{
		Name: "join",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			target := e.CanonHeight()
			i, err := e.AddNode()
			if err != nil {
				return fmt.Errorf("join: %w", err)
			}
			return waitCaughtUp(e, i, target, 15*time.Second)
		},
	}
}

// ReplaceFault swaps node i for a fresh identity at atFrac: the successor
// joins first (the group briefly runs one node larger, so quorum never
// thins), then node i is removed through consensus, drains, and leaves.
func ReplaceFault(node int, atFrac float64) Fault {
	return Fault{
		Name: "replace",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			target := e.CanonHeight()
			ni, err := e.ReplaceNode(node)
			if err != nil {
				return fmt.Errorf("replace node %d: %w", node, err)
			}
			return waitCaughtUp(e, ni, target, 15*time.Second)
		},
	}
}

// RollingRestartFault restarts every node of the original cluster in
// sequence (the rolling-upgrade procedure): each is crashed, recovered
// from its data directory after pause, and must catch back up to the
// canonical height it died at before the next node goes down, so quorum
// is thinned by at most one node at any time. The sequence runs to
// completion even if the injection window closes mid-roll, so final
// invariants always see the whole cluster back.
func RollingRestartFault(atFrac float64, pause time.Duration) Fault {
	return Fault{
		Name: "rolling-restart",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			for i := 0; i < e.Scenario.Nodes; i++ {
				target := e.CanonHeight()
				e.KillNode(i)
				time.Sleep(pause)
				if err := e.RestartNode(i); err != nil {
					return fmt.Errorf("rolling restart: node %d: %w", i, err)
				}
				if err := waitCaughtUp(e, i, target, 15*time.Second); err != nil {
					return fmt.Errorf("rolling restart: %w", err)
				}
			}
			return nil
		},
	}
}

// waitCaughtUp polls until node i's durable chain reaches target height.
func waitCaughtUp(e *Env, i int, target uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n, _ := e.Node(i)
		if n != nil {
			if led := n.Ledger(e.Channel); led != nil && led.Height() >= target {
				return nil
			}
		}
		if time.Now().After(deadline) {
			var h uint64
			if n != nil {
				if led := n.Ledger(e.Channel); led != nil {
					h = led.Height()
				}
			}
			return fmt.Errorf("node %d never caught up to height %d (at %d)", i, target, h)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// DiskBitRotFault silently corrupts `blocks` durable block records at
// rest on node i's disk at atFrac of the run: each record's bytes are
// flipped in the segment file underneath the storage stack (the way real
// media rots — no write path ever sees it), the damage is recorded in the
// corruption ledger for ScrubHeals to audit, and a scrub pass is
// triggered so the self-heal path runs inside the scenario window. The
// corrupted records sit in the middle of the node's durable history, so
// they are old enough to be group-committed and young enough to be
// retained.
func DiskBitRotFault(node int, atFrac float64, blocks int) Fault {
	return Fault{
		Name: "disk-bitrot",
		Run: func(e *Env) error {
			after(e, frac(e, atFrac)) // inject even if the window closed first
			if blocks < 1 {
				blocks = 1
			}
			// Wait until the node has enough durable history to damage.
			var wm uint64
			deadline := time.Now().Add(10 * time.Second)
			for {
				n, _ := e.Node(node)
				if n != nil {
					wm = n.PersistWatermark(e.Channel)
				}
				if wm >= uint64(blocks)+2 {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("node %d never persisted %d blocks to corrupt (watermark %d)",
						node, blocks+2, wm)
				}
				time.Sleep(50 * time.Millisecond)
			}
			n, _ := e.Node(node)
			if n == nil {
				return fmt.Errorf("node %d is down, cannot rot its disk", node)
			}
			start := wm / 2
			for num := start; num < start+uint64(blocks); num++ {
				path, off, length, err := n.BlockSpan(e.Channel, num)
				if err != nil {
					return fmt.Errorf("locating node %d block %d at rest: %w", node, num, err)
				}
				if err := flipByteAt(path, off+length-1); err != nil {
					return fmt.Errorf("rotting node %d block %d: %w", node, num, err)
				}
				e.NoteCorrupted(node, e.Channel, num)
			}
			n.TriggerScrub()
			return nil
		},
	}
}

// flipByteAt XORs one bit of the byte at off in path, writing directly to
// the file underneath every storage abstraction — at-rest corruption.
func flipByteAt(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0x01
	_, err = f.WriteAt(b[:], off)
	return err
}

// FsyncFailFault turns node i's disk into one that accepts writes but
// fails every fsync (the dead-disk / fsyncgate mode) at atFrac of the
// run. The node's commit log must then poison itself on the next wave —
// fail-fast — and stop advancing durability rather than retrying a sync
// the kernel semantics make meaningless. The fault fails the run if the
// log never poisons: that would mean a node kept acking writes its disk
// never accepted.
func FsyncFailFault(node int, atFrac float64) Fault {
	return Fault{
		Name: "fsync-fail",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			ffs := e.FaultFS(node)
			if ffs == nil {
				return fmt.Errorf("node %d has no fault filesystem (scenario must set DiskFaults)", node)
			}
			ffs.FailSyncsSticky(true)
			deadline := time.Now().Add(10 * time.Second)
			for {
				n, _ := e.Node(node)
				if n != nil && n.StoragePoisoned() != nil {
					return nil
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("node %d commit log never poisoned despite every fsync failing", node)
				}
				time.Sleep(20 * time.Millisecond)
			}
		},
	}
}

// DiskLatencyFault injects d of latency into every storage operation on
// node i from atFrac until the injection window closes (a dying or
// overloaded disk). Cleared at the window's end so quiesce and final
// invariants run at full speed.
func DiskLatencyFault(node int, atFrac float64, d time.Duration) Fault {
	return Fault{
		Name: "disk-latency",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			ffs := e.FaultFS(node)
			if ffs == nil {
				return fmt.Errorf("node %d has no fault filesystem (scenario must set DiskFaults)", node)
			}
			ffs.SetOpDelay(d)
			<-e.Done()
			ffs.SetOpDelay(0)
			return nil
		},
	}
}

// ReconfigFault removes a replica from the group through consensus at
// atFrac: an admin client submits the membership change, the fault waits
// for the survivors to report the shrunken membership, then crashes the
// removed node (it plays no further part).
func ReconfigFault(remove int, atFrac float64) Fault {
	return Fault{
		Name: "reconfig",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			conn, err := e.Network.Join("chaos-admin-client")
			if err != nil {
				return fmt.Errorf("admin join: %w", err)
			}
			client, err := consensus.NewClient(conn, consensus.ClientConfig{
				Replicas: e.Cluster.Replicas(),
				F:        e.F,
			})
			if err != nil {
				conn.Close()
				return fmt.Errorf("admin client: %w", err)
			}
			defer client.Close()
			op := consensus.EncodeReconfigOp(consensus.ReconfigOp{
				Kind:    consensus.ReconfigRemove,
				Replica: consensus.ReplicaID(remove),
			})
			if err := client.Invoke(op); err != nil {
				return fmt.Errorf("reconfig invoke: %w", err)
			}
			want := int32(e.Scenario.Nodes - 1)
			deadline := time.Now().Add(10 * time.Second)
			for {
				shrunk := true
				for i := 0; i < e.Scenario.Nodes; i++ {
					if i == remove {
						continue
					}
					n, _ := e.Node(i)
					if n != nil && n.Replica().Stats().Members != want {
						shrunk = false
					}
				}
				if shrunk {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("membership never shrank to %d", want)
				}
				time.Sleep(20 * time.Millisecond)
			}
			e.KillNode(remove)
			return nil
		},
	}
}
