// Package chaos is a scenario harness for the whole ordering stack: it
// composes fault injectors (WAN latency/jitter/loss, partitions,
// crash-restart mid-wave, byzantine dissemination and forged history)
// against continuously-running invariant checkers (deliver continuity,
// verified fetch, persist-watermark monotonicity, durability floors,
// leader-change liveness) over a live cluster under load.
//
// A Scenario is deterministic given its seed: the WAN jitter and loss
// draws, the load payloads, and the fetch probe ranges all derive from
// Scenario.Seed, so a failing run can be replayed. Faults and invariants
// are plain values — tests and cmd/chaosbench compose them freely, and
// the registry (Scenarios) names the standard matrix.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sharding"
	"repro/internal/storage/faultfs"
	"repro/internal/transport"
)

// Load shapes the traffic a scenario sustains while faults play out.
type Load struct {
	// Clients is the number of concurrent closed-loop submitters.
	Clients int
	// EnvBytes sizes each envelope payload.
	EnvBytes int
	// Pace is the per-client delay between broadcasts (bounds the rate so
	// short scenarios stay comparable across machines). Zero = 2ms.
	Pace time.Duration
}

// Scenario is one named chaos experiment: a cluster shape, a load, the
// faults to inject, and the invariants that must hold throughout.
type Scenario struct {
	Name        string
	Description string

	// Cluster shape. Zero values pick the harness defaults (4 nodes,
	// blocks of 2, checkpoint every 8 decisions, 2s request timeout).
	Nodes              int
	BlockSize          int
	CheckpointInterval int64
	RequestTimeout     time.Duration
	// RetainBlocks bounds every node's durable blocks per channel (zero
	// retains everything). Scenarios that set it run with live block-store
	// compaction, so joining and backfilling nodes bootstrap from the
	// retention floor instead of genesis — the world NoOverPrune checks.
	RetainBlocks uint64

	// Shards > 0 selects the sharded world instead of the single group:
	// that many independent consensus groups (Nodes replicas each) behind
	// a channel→shard router, one load channel pinned per shard. Sharded
	// scenarios use the shard-aware faults and invariants (sharded.go);
	// the single-cluster checkers do not apply.
	Shards int

	// DiskFaults threads a fault-injecting filesystem (faultfs) under every
	// node's storage stack, reachable via Env.FaultFS, so faults can arm
	// bit-rot, fsync failures, ENOSPC, or latency per node mid-run. Off by
	// default: fault-free scenarios run on the real filesystem.
	DiskFaults bool
	// ScrubInterval is each node's background scrub cadence (zero leaves
	// the production default alone for non-disk scenarios; disk-fault
	// scenarios default to 1s so a run actually exercises timed passes).
	ScrubInterval time.Duration

	// Seed drives every random choice in the run (jitter, loss, probe
	// ranges, payloads). Zero selects 42.
	Seed uint64
	// Duration is the fault-injection window (load runs throughout; the
	// runner then quiesces and evaluates final invariants).
	Duration time.Duration

	Load       Load
	Faults     []Fault
	Invariants []Invariant
}

func (s Scenario) withDefaults() Scenario {
	if s.Nodes == 0 {
		s.Nodes = 4
	}
	if s.BlockSize == 0 {
		s.BlockSize = 2
	}
	if s.CheckpointInterval == 0 {
		s.CheckpointInterval = 8
	}
	if s.RequestTimeout == 0 {
		s.RequestTimeout = 2 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Duration == 0 {
		s.Duration = 5 * time.Second
	}
	if s.Load.Clients == 0 {
		s.Load.Clients = 2
	}
	if s.Load.EnvBytes == 0 {
		s.Load.EnvBytes = 64
	}
	if s.Load.Pace == 0 {
		s.Load.Pace = 2 * time.Millisecond
	}
	if s.DiskFaults && s.ScrubInterval == 0 {
		s.ScrubInterval = time.Second
	}
	return s
}

// Fault is one injector: Run executes on its own goroutine from scenario
// start until the injection window closes (watch e.Done()). A returned
// error is recorded as a violation against the fault's name.
type Fault struct {
	Name string
	Run  func(e *Env) error
}

// Invariant is one continuous checker: Start may spawn goroutines (register
// them with e.Go) that watch the cluster until e.Done(); Stop runs after
// load has quiesced and performs final (possibly polling) assertions.
// Violations are recorded with e.Violate under the invariant's name.
type Invariant struct {
	Name  string
	Start func(e *Env) error
	Stop  func(e *Env)
}

// Env is the running world a scenario's faults and invariants act on.
type Env struct {
	Scenario Scenario
	Network  *transport.InProcNetwork
	Cluster  *core.Cluster
	// Observer is the measurement frontend (f+1 verified-signature
	// release rule); invariants watch the system through it.
	Observer *core.Frontend
	// LoadFE carries the scenario's traffic (2f+1 matching release rule).
	LoadFE  *core.Frontend
	Channel string
	F       int

	// Sharded world (set only when Scenario.Shards > 0; see sharded.go).
	// Service holds the per-shard consensus groups; Router is the
	// observer-side channel→shard router (verified release rule),
	// LoadRouter the load-side one; ShardChannels maps each shard to its
	// pinned load channel.
	Service       *sharding.Service
	Router        *sharding.Router
	LoadRouter    *sharding.Router
	ShardChannels map[sharding.ShardID]string

	// Metrics is the registry every node/frontend of the run reports into
	// (the runner always instruments chaos clusters so MetricsSane can
	// cross-check gauges against ground truth).
	Metrics *obs.Registry

	done chan struct{}
	wg   sync.WaitGroup

	mu         sync.Mutex
	epochs     []int
	violations map[string][]string

	canonMu sync.Mutex
	canon   []*fabric.Block
	canons  map[string][]*fabric.Block // per-channel chains (sharded world)

	// faultFS holds the per-node fault-injecting filesystems (set only
	// when Scenario.DiskFaults; indexed like Cluster.Nodes).
	faultFS []*faultfs.FS

	// corrMu guards the at-rest corruption ledger ScrubHeals audits.
	corrMu    sync.Mutex
	corrupted []CorruptionMark

	// ackMu guards the acked-vs-delivered ledger NoSilentLoss audits: a
	// broadcast the load frontend acked must eventually appear in the
	// canonical chain. Delivery can race ahead of the ack bookkeeping, so
	// both sides are recorded and pending = acked minus delivered.
	ackMu        sync.Mutex
	ackPending   map[loadKey]bool
	ackDelivered map[loadKey]bool
}

// CorruptionMark is one at-rest corruption a disk fault injected: node
// index plus the block coordinates whose durable record was damaged.
type CorruptionMark struct {
	Node    int
	Channel string
	Num     uint64
}

// FaultFS returns node i's fault-injecting filesystem, or nil when the
// scenario runs without DiskFaults (or the node joined after startup).
func (e *Env) FaultFS(i int) *faultfs.FS {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.faultFS) {
		return nil
	}
	return e.faultFS[i]
}

// NoteCorrupted records an injected at-rest corruption for ScrubHeals.
func (e *Env) NoteCorrupted(node int, channel string, num uint64) {
	e.corrMu.Lock()
	defer e.corrMu.Unlock()
	e.corrupted = append(e.corrupted, CorruptionMark{Node: node, Channel: channel, Num: num})
}

// CorruptionLedger snapshots the injected at-rest corruptions.
func (e *Env) CorruptionLedger() []CorruptionMark {
	e.corrMu.Lock()
	defer e.corrMu.Unlock()
	return append([]CorruptionMark(nil), e.corrupted...)
}

// noteAcked records a load broadcast the frontend acked. If the envelope
// already delivered (the release can outrun the ack return path) it is
// settled immediately.
func (e *Env) noteAcked(k loadKey) {
	e.ackMu.Lock()
	defer e.ackMu.Unlock()
	if e.ackDelivered[k] {
		return
	}
	e.ackPending[k] = true
}

// noteDelivered settles an envelope observed in the canonical stream.
func (e *Env) noteDelivered(k loadKey) {
	e.ackMu.Lock()
	defer e.ackMu.Unlock()
	e.ackDelivered[k] = true
	delete(e.ackPending, k)
}

// ackedUndelivered counts acked envelopes not yet seen in the canonical
// chain and returns one example for the violation message.
func (e *Env) ackedUndelivered() (int, loadKey) {
	e.ackMu.Lock()
	defer e.ackMu.Unlock()
	for k := range e.ackPending {
		return len(e.ackPending), k
	}
	return 0, loadKey{}
}

// Done closes when the fault-injection window ends; faults and invariant
// watchers must unblock on it.
func (e *Env) Done() <-chan struct{} { return e.done }

// Go runs f on a harness-tracked goroutine; the runner waits for all of
// them before evaluating final invariants.
func (e *Env) Go(f func()) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		f()
	}()
}

// Violate records an invariant (or fault) violation. The run fails and the
// detail surfaces in the scenario result.
func (e *Env) Violate(name, format string, args ...any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.violations[name] = append(e.violations[name], fmt.Sprintf(format, args...))
}

func (e *Env) violationsFor(name string) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.violations[name]...)
}

// Node returns node i and its restart epoch (bumped by every KillNode), or
// nil while the node is down. Cluster membership is mutated by crash
// faults, so all node access goes through this guard.
func (e *Env) Node(i int) (*core.OrderingNode, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Cluster.Nodes[i], e.epochs[i]
}

// KillNode crashes node i (storage closed, endpoint detached).
func (e *Env) KillNode(i int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.Cluster.KillNode(i)
	e.epochs[i]++
}

// RestartNode recovers a killed node from its data directory.
func (e *Env) RestartNode(i int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Cluster.RestartNode(i)
}

// NodeCount is the cluster's node-slot count; membership faults (joins,
// replacements) grow it mid-run, so invariants that must cover newcomers
// iterate this instead of Scenario.Nodes.
func (e *Env) NodeCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.Cluster.Nodes)
}

// Members snapshots the cluster's view of the group (removed nodes
// excluded) — the set every live node's membership view must converge to.
func (e *Env) Members() []consensus.ReplicaID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Cluster.Replicas()
}

// AddNode grows the cluster by one joining node and returns its index.
// The cluster call blocks until the group ordered the add and every live
// view converged, so e.mu stays held throughout — concurrent Node reads
// simply pause; they cannot observe the slices mid-growth.
func (e *Env) AddNode() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, err := e.Cluster.AddNode()
	for len(e.epochs) < len(e.Cluster.Nodes) {
		e.epochs = append(e.epochs, 0)
	}
	return i, err
}

// ReplaceNode swaps node i for a fresh identity (add first, then graceful
// remove) and returns the successor's index.
func (e *Env) ReplaceNode(i int) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ni, err := e.Cluster.ReplaceNode(i)
	for len(e.epochs) < len(e.Cluster.Nodes) {
		e.epochs = append(e.epochs, 0)
	}
	return ni, err
}

// appendCanon extends the observer-released canonical chain (release is
// in-order per channel; out-of-order copies are ignored here — the deliver
// continuity invariant owns that check on its own stream).
func (e *Env) appendCanon(b *fabric.Block) {
	e.canonMu.Lock()
	if b.Header.Number == uint64(len(e.canon)) {
		e.canon = append(e.canon, b)
	}
	e.canonMu.Unlock()
}

// Canon snapshots the canonical (observer-released, f+1-verified) chain.
func (e *Env) Canon() []*fabric.Block {
	e.canonMu.Lock()
	defer e.canonMu.Unlock()
	return append([]*fabric.Block(nil), e.canon...)
}

// CanonHeight is the canonical chain height.
func (e *Env) CanonHeight() uint64 {
	e.canonMu.Lock()
	defer e.canonMu.Unlock()
	return uint64(len(e.canon))
}

// appendChanCanon extends one channel's canonical chain (sharded world).
func (e *Env) appendChanCanon(channel string, b *fabric.Block) {
	e.canonMu.Lock()
	if b.Header.Number == uint64(len(e.canons[channel])) {
		e.canons[channel] = append(e.canons[channel], b)
	}
	e.canonMu.Unlock()
}

// ChanCanonHeight is one channel's canonical chain height (sharded world).
func (e *Env) ChanCanonHeight(channel string) uint64 {
	e.canonMu.Lock()
	defer e.canonMu.Unlock()
	return uint64(len(e.canons[channel]))
}

// after waits d within the injection window; false means the window closed
// first.
func after(e *Env, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-e.Done():
		return false
	}
}

// frac converts a fraction of the scenario duration into a delay.
func frac(e *Env, f float64) time.Duration {
	return time.Duration(f * float64(e.Scenario.Duration))
}
