package chaos

import (
	"os"
	"testing"

	"repro/internal/core"
)

func runScenario(t *testing.T, name string, inspect func(*Env)) Result {
	t.Helper()
	s, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	res, err := Run(s, Options{Scale: 0.5, DataDir: t.TempDir(), Inspect: inspect, Logf: t.Logf})
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return res
}

func assertPass(t *testing.T, res Result) {
	t.Helper()
	for _, inv := range res.Invariants {
		if !inv.Pass {
			t.Errorf("%s: invariant %s failed: %v", res.Scenario, inv.Name, inv.Detail)
		}
	}
	if res.Blocks == 0 || res.Delivered == 0 {
		t.Errorf("%s: no progress under load: %d blocks, %d envelopes", res.Scenario, res.Blocks, res.Delivered)
	}
}

// TestChaosSmoke is the CI gate: the fault-free scenario must hold every
// invariant — any failure here is a harness bug, not an injected fault.
func TestChaosSmoke(t *testing.T) {
	assertPass(t, runScenario(t, "baseline", nil))
}

func TestPartitionHealScenario(t *testing.T) {
	assertPass(t, runScenario(t, "partition-heal", nil))
}

// TestCrashMidWaveScenario crashes the leader under aggressive checkpoints:
// the persist-watermark checkpoint gate must keep its recovery gap-free and
// the synchronization phase must depose it meanwhile.
func TestCrashMidWaveScenario(t *testing.T) {
	assertPass(t, runScenario(t, "crash-mid-wave", nil))
}

func TestByzantineEquivocateScenario(t *testing.T) {
	assertPass(t, runScenario(t, "byzantine-equivocate", nil))
}

// TestForgedHistoryScenario runs a live forged-history adversary: every
// fetch probe must keep returning the canonical chain because the f+1
// verification quorum rejects the forged candidate.
func TestForgedHistoryScenario(t *testing.T) {
	assertPass(t, runScenario(t, "forged-history", nil))
}

// TestForgedHistoryTeeth proves the invariant has teeth: with f+1
// verification artificially disabled, the same adversary must trip the
// verified-fetch invariant.
func TestForgedHistoryTeeth(t *testing.T) {
	core.SetFetchVerificationDisabled(true)
	defer core.SetFetchVerificationDisabled(false)
	res := runScenario(t, "forged-history", nil)
	if res.Pass {
		t.Fatal("forged-history passed with fetch verification disabled; the verified-fetch invariant has no teeth")
	}
	tripped := false
	for _, inv := range res.Invariants {
		if inv.Name == "verified-fetch" && !inv.Pass {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("expected the verified-fetch invariant to trip, got %+v", res.Invariants)
	}
}

// TestReconfigUnderChaos exercises consensus membership change while a
// partition heals: the group shrinks through consensus and keeps ordering.
func TestReconfigUnderChaos(t *testing.T) {
	res := runScenario(t, "reconfig-heal", func(e *Env) {
		if n, _ := e.Node(3); n != nil {
			t.Error("removed replica 3 still running at end of scenario")
		}
		for i := 0; i < 3; i++ {
			n, _ := e.Node(i)
			if n == nil {
				t.Errorf("survivor %d is down", i)
				continue
			}
			if m := n.Replica().Stats().Members; m != 3 {
				t.Errorf("survivor %d reports %d members, want 3", i, m)
			}
		}
	})
	assertPass(t, res)
}

// TestJoinUnderLoadScenario grows the cluster mid-run: a fifth node joins
// from an empty data directory under live retention and must converge into
// the group (membership-converged) without anyone pruning the range it
// needs (no-over-prune).
func TestJoinUnderLoadScenario(t *testing.T) {
	res := runScenario(t, "join-under-load", func(e *Env) {
		if got := e.NodeCount(); got != 5 {
			t.Errorf("cluster has %d node slots after the join, want 5", got)
		}
		n, _ := e.Node(4)
		if n == nil {
			t.Fatal("joined node 4 is down at end of scenario")
		}
		if v := n.MembershipView(); len(v.Members) != 5 || v.Epoch == 0 {
			t.Errorf("joined node sees %d members at epoch %d, want 5 members past epoch 0",
				len(v.Members), v.Epoch)
		}
	})
	assertPass(t, res)
}

// TestNodeReplaceScenario swaps a replica for a fresh identity mid-run:
// the successor joins first, then the old node leaves gracefully.
func TestNodeReplaceScenario(t *testing.T) {
	res := runScenario(t, "node-replace", func(e *Env) {
		if n, _ := e.Node(1); n != nil {
			t.Error("replaced node 1 still running at end of scenario")
		}
		n, _ := e.Node(4)
		if n == nil {
			t.Fatal("successor node 4 is down at end of scenario")
		}
		if v := n.MembershipView(); len(v.Members) != 4 {
			t.Errorf("successor sees %d members, want 4", len(v.Members))
		}
	})
	assertPass(t, res)
}

// TestRollingRestartScenario is the rolling-upgrade gate: every node is
// crash-restarted in sequence under continuous load, and the run must end
// with zero delivery gaps and a converged membership.
func TestRollingRestartScenario(t *testing.T) {
	res := runScenario(t, "rolling-restart", func(e *Env) {
		for i := 0; i < e.Scenario.Nodes; i++ {
			if n, _ := e.Node(i); n == nil {
				t.Errorf("node %d is down after the roll", i)
			}
		}
	})
	assertPass(t, res)
}

// TestCrossShardAtomicScenario is the fault-free sharded gate: two
// consensus groups behind the router, continuous cross-shard mark/commit
// traffic, every transaction visible in both chains or neither.
func TestCrossShardAtomicScenario(t *testing.T) {
	res := runScenario(t, "cross-shard-atomic", func(e *Env) {
		for shard, channel := range e.ShardChannels {
			if e.ChanCanonHeight(channel) == 0 {
				t.Errorf("shard %d channel %s ordered no blocks", shard, channel)
			}
		}
	})
	assertPass(t, res)
}

// TestShardPartitionScenario stalls shard 1 past quorum loss mid-run: shard
// 0 must keep ordering throughout (checked inside the fault), the healed
// shard must drain its queued backlog and catch up, and cross-shard
// transactions must stay atomic across the stall.
func TestShardPartitionScenario(t *testing.T) {
	assertPass(t, runScenario(t, "shard-partition", nil))
}

func TestWANGeoScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("wan-geo runs real wide-area delays")
	}
	assertPass(t, runScenario(t, "wan-geo", nil))
}

// TestDiskBitRotScrubScenario rots durable block records at rest on one
// node mid-run: the scrubber must detect the damage and self-heal from
// f+1-verified peer copies before the run ends (scrub-heals), with no
// acked envelope lost (no-silent-loss).
func TestDiskBitRotScrubScenario(t *testing.T) {
	res := runScenario(t, "disk-bitrot-scrub", func(e *Env) {
		if len(e.CorruptionLedger()) == 0 {
			t.Error("the disk fault never injected corruption")
		}
	})
	assertPass(t, res)
}

// TestScrubHealsTeeth proves the scrub-heals invariant has teeth: with
// the peer-repair path artificially disabled, the same at-rest rot must
// trip it — detection without repair is not self-healing.
func TestScrubHealsTeeth(t *testing.T) {
	core.SetScrubRepairDisabled(true)
	defer core.SetScrubRepairDisabled(false)
	res := runScenario(t, "disk-bitrot-scrub", nil)
	if res.Pass {
		t.Fatal("disk-bitrot-scrub passed with scrub repair disabled; the scrub-heals invariant has no teeth")
	}
	tripped := false
	for _, inv := range res.Invariants {
		if inv.Name == "scrub-heals" && !inv.Pass {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("expected the scrub-heals invariant to trip, got %+v", res.Invariants)
	}
}

// TestFsyncErrorFailFastScenario turns one node's disk fsync-dead
// mid-run: its commit log must poison itself and stop advancing
// durability (fail-fast) while the other replicas keep the service live
// with every acked envelope delivered.
func TestFsyncErrorFailFastScenario(t *testing.T) {
	res := runScenario(t, "fsync-error-failfast", func(e *Env) {
		n, _ := e.Node(3)
		if n == nil {
			t.Error("node 3 is down at end of scenario")
			return
		}
		if n.StoragePoisoned() == nil {
			t.Error("node 3's commit log was never poisoned despite every fsync failing")
		}
	})
	assertPass(t, res)
}

// TestWanCrashByzantineDiskScenario is the kitchen sink: WAN jitter and
// loss, a crash-recovery, a forged-history byzantine, and at-rest disk
// corruption at once — every standard invariant plus self-healing and
// no-silent-loss must hold together.
func TestWanCrashByzantineDiskScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("wan-crash-byzantine-disk runs real wide-area delays")
	}
	assertPass(t, runScenario(t, "wan-crash-byzantine-disk", nil))
}

// TestDiskSoak is the long compounded-disk-fault soak (~60s injection
// plus quiesce). It is opt-in via CHAOS_SOAK=1 — CI runs it nightly, not
// on every push.
func TestDiskSoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") != "1" {
		t.Skip("set CHAOS_SOAK=1 to run the disk-fault soak")
	}
	s := SoakScenario()
	res, err := Run(s, Options{DataDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("run %s: %v", s.Name, err)
	}
	assertPass(t, res)
	if len(res.Invariants) == 0 {
		t.Fatal("soak ran without invariants")
	}
}
