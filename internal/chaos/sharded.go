package chaos

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sharding"
	"repro/internal/transport"
)

// Sharded chaos world: Scenario.Shards independent consensus groups on one
// network behind a channel→shard router, each shard carrying its own load
// channel (ShardChannel(k)), plus a continuous stream of cross-shard
// mark/commit transactions when the scenario includes the atomicity
// invariant. Shard-aware faults partition whole groups; the invariants
// check that the blast radius of a shard fault stops at that shard's
// boundary — the other groups keep ordering, the healed group catches
// back up, and cross-shard transactions stay atomic throughout.

// ShardChannel names shard k's load channel.
func ShardChannel(k sharding.ShardID) string { return fmt.Sprintf("chaos-s%d", k) }

// runSharded is Run's sharded twin: same phases (build, invariants, faults
// under load, quiesce, final invariants), a multi-group world.
func runSharded(s Scenario, opts Options) (Result, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dataDir := opts.DataDir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "chaos-"+s.Name+"-*")
		if err != nil {
			return Result{}, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}

	m := sharding.Map{Channels: make(map[string]sharding.ShardID, s.Shards)}
	shardChannels := make(map[sharding.ShardID]string, s.Shards)
	for k := 0; k < s.Shards; k++ {
		shard := sharding.ShardID(k)
		m.Shards = append(m.Shards, shard)
		m.Channels[ShardChannel(shard)] = shard
		shardChannels[shard] = ShardChannel(shard)
	}
	network := transport.NewInProcNetwork(transport.InProcConfig{})
	defer network.Close()
	registry := obs.NewRegistry()
	svc, err := sharding.NewService(sharding.ServiceConfig{
		Map:                m,
		NodesPerShard:      s.Nodes,
		BlockSize:          s.BlockSize,
		BlockTimeout:       150 * time.Millisecond,
		RequestTimeout:     s.RequestTimeout,
		CheckpointInterval: s.CheckpointInterval,
		Network:            network,
		DataDir:            dataDir,
		Metrics:            registry,
	})
	if err != nil {
		return Result{}, fmt.Errorf("chaos %s: %w", s.Name, err)
	}
	defer svc.Stop()

	observer, closeObs, err := svc.NewRouter("chaos-obs", true)
	if err != nil {
		return Result{}, fmt.Errorf("chaos %s: observer router: %w", s.Name, err)
	}
	defer closeObs()
	loadRouter, closeLoad, err := svc.NewRouter("chaos-load", false)
	if err != nil {
		return Result{}, fmt.Errorf("chaos %s: load router: %w", s.Name, err)
	}
	defer closeLoad()

	e := &Env{
		Scenario:      s,
		Network:       network,
		Cluster:       svc.Cluster(0),
		Service:       svc,
		Router:        observer,
		LoadRouter:    loadRouter,
		ShardChannels: shardChannels,
		Channel:       ShardChannel(0),
		Metrics:       registry,
		done:          make(chan struct{}),
		epochs:        make([]int, s.Nodes),
		violations:    make(map[string][]string),
		canons:        make(map[string][]*fabric.Block),
	}

	// Measurement streams: one verified-release stream per channel extends
	// that channel's canonical chain and records broadcast→release latency.
	recorder := bench.NewLatencyRecorder()
	var delivered atomic.Uint64
	var times sync.Map
	var consumers sync.WaitGroup
	var streams []*fabric.BlockStream
	for _, shard := range svc.Shards() {
		channel := shardChannels[shard]
		stream, err := observer.Deliver(channel, fabric.DeliverFrom(0))
		if err != nil {
			return Result{}, fmt.Errorf("chaos %s: observe %s: %w", s.Name, channel, err)
		}
		streams = append(streams, stream)
		consumers.Add(1)
		// Not on e.Go: consumers outlive the injection window (they count
		// the quiesce drain) and exit when the streams are canceled below.
		go func(channel string, stream *fabric.BlockStream) {
			defer consumers.Done()
			for b := range stream.Blocks() {
				now := time.Now()
				e.appendChanCanon(channel, b)
				for _, raw := range b.Envelopes {
					client, seq, ok := bench.EnvelopeSeq(raw)
					if !ok {
						continue
					}
					delivered.Add(1)
					if v, loaded := times.LoadAndDelete(loadKey{client, seq}); loaded {
						if start, isTime := v.(time.Time); isTime {
							recorder.Record(now.Sub(start))
						}
					}
				}
			}
		}(channel, stream)
	}

	for _, inv := range s.Invariants {
		if err := inv.Start(e); err != nil {
			return Result{}, fmt.Errorf("chaos %s: invariant %s: %w", s.Name, inv.Name, err)
		}
	}
	for _, f := range s.Faults {
		fault := f
		e.Go(func() {
			if err := fault.Run(e); err != nil {
				e.Violate("fault:"+fault.Name, "%v", err)
			}
		})
	}
	// Per-shard load: every shard gets its own closed-loop submitters so
	// aggregate progress is comparable across shards.
	for _, shard := range svc.Shards() {
		channel := shardChannels[shard]
		for i := 0; i < s.Load.Clients; i++ {
			client := fmt.Sprintf("chaos-s%d-%d", shard, i)
			gen := bench.NewEnvelopeGen(channel, client, s.Load.EnvBytes, int64(s.Seed)+int64(shard)*100+int64(i))
			e.Go(func() {
				for {
					select {
					case <-e.Done():
						return
					default:
					}
					raw, seq := gen.Next()
					key := loadKey{client: client, seq: seq}
					times.Store(key, time.Now())
					switch st := e.LoadRouter.BroadcastRaw(raw); st {
					case fabric.StatusSuccess:
					case fabric.StatusServiceUnavailable:
						times.Delete(key) // backpressure or teardown: drop the sample
						time.Sleep(20 * time.Millisecond)
					default:
						times.Delete(key)
						e.Violate("load", "broadcast answered %v", st)
						return
					}
					time.Sleep(s.Load.Pace)
				}
			})
		}
	}

	logf("chaos %s: %d shards, injecting for %v (seed %d)", s.Name, s.Shards, s.Duration, s.Seed)
	start := time.Now()
	time.Sleep(s.Duration)
	close(e.done)
	e.wg.Wait()

	// Quiesce: a healed shard drains its queued backlog here, so the wait
	// is part of the experiment, not slack.
	quiesceDeadline := time.Now().Add(15 * time.Second)
	lastCount := delivered.Load()
	lastChange := time.Now()
	for time.Now().Before(quiesceDeadline) {
		time.Sleep(100 * time.Millisecond)
		if n := delivered.Load(); n != lastCount {
			lastCount, lastChange = n, time.Now()
		} else if time.Since(lastChange) > time.Second {
			break
		}
	}
	elapsed := time.Since(start)

	for _, inv := range s.Invariants {
		inv.Stop(e)
	}
	if opts.Inspect != nil {
		opts.Inspect(e)
	}
	for _, stream := range streams {
		stream.Cancel()
	}
	consumers.Wait()

	var blocks uint64
	for _, channel := range shardChannels {
		blocks += e.ChanCanonHeight(channel)
	}
	res := Result{
		Scenario:    s.Name,
		Description: s.Description,
		Seed:        s.Seed,
		Pass:        true,
		P50Ms:       float64(recorder.Percentile(50).Microseconds()) / 1000,
		P99Ms:       float64(recorder.Percentile(99).Microseconds()) / 1000,
		Delivered:   delivered.Load(),
		Blocks:      blocks,
		DurationSec: elapsed.Seconds(),
	}
	seen := map[string]bool{}
	for _, inv := range s.Invariants {
		v := e.violationsFor(inv.Name)
		res.Invariants = append(res.Invariants, InvariantResult{Name: inv.Name, Pass: len(v) == 0, Detail: v})
		seen[inv.Name] = true
		if len(v) > 0 {
			res.Pass = false
		}
	}
	e.mu.Lock()
	for name, v := range e.violations {
		if !seen[name] && len(v) > 0 {
			res.Invariants = append(res.Invariants, InvariantResult{Name: name, Pass: false, Detail: append([]string(nil), v...)})
			res.Pass = false
		}
	}
	e.mu.Unlock()
	logf("chaos %s: pass=%v delivered=%d blocks=%d p50=%.1fms p99=%.1fms",
		s.Name, res.Pass, res.Delivered, res.Blocks, res.P50Ms, res.P99Ms)
	return res, nil
}

// shardHeight is the highest ledger height any node of the shard holds for
// the channel.
func (e *Env) shardHeight(shard sharding.ShardID, channel string) uint64 {
	var max uint64
	for _, n := range e.Service.Cluster(shard).Nodes {
		if n == nil {
			continue
		}
		if led := n.Ledger(channel); led != nil && led.Height() > max {
			max = led.Height()
		}
	}
	return max
}

// ---- sharded faults ------------------------------------------------------

// ShardPartitionFault splits ONE consensus group down the middle at atFrac
// of the scenario duration (neither half keeps a quorum: the shard stalls
// completely) and heals at healFrac. Before healing it checks the fault
// stayed contained: every OTHER shard must have kept ordering while this
// one was down. Queued load on the stalled shard orders after the heal —
// the catch-up invariant owns that side.
func ShardPartitionFault(shard sharding.ShardID, atFrac, healFrac float64) Fault {
	return Fault{
		Name: "shard-partition",
		Run: func(e *Env) error {
			if !after(e, frac(e, atFrac)) {
				return nil
			}
			replicas := e.Service.Cluster(shard).Replicas()
			half := len(replicas) / 2
			var a, b []transport.Addr
			for i, id := range replicas {
				if i < half {
					a = append(a, id.Addr())
				} else {
					b = append(b, id.Addr())
				}
			}
			before := make(map[sharding.ShardID]uint64)
			for other, channel := range e.ShardChannels {
				if other != shard {
					before[other] = e.shardHeight(other, channel)
				}
			}
			e.Network.Partition(a, b)
			defer e.Network.Heal()
			after(e, frac(e, healFrac-atFrac))
			for other, h := range before {
				now := e.shardHeight(other, e.ShardChannels[other])
				if now <= h {
					return fmt.Errorf("shard %d made no progress while shard %d was partitioned (height %d)",
						other, shard, now)
				}
			}
			return nil
		},
	}
}

// ---- sharded invariants --------------------------------------------------

// ShardContinuity subscribes from genesis on every shard's channel through
// the router and checks each released stream is gap-free, duplicate-free,
// and hash-chained — including across a shard stall, where the stream may
// pause but must resume without a seam.
func ShardContinuity() Invariant {
	const name = "shard-continuity"
	var streams []*fabric.BlockStream
	var consumed sync.WaitGroup
	return Invariant{
		Name: name,
		Start: func(e *Env) error {
			for shard, channel := range e.ShardChannels {
				stream, err := e.Router.Deliver(channel, fabric.DeliverFrom(0))
				if err != nil {
					return fmt.Errorf("shard %d: %w", shard, err)
				}
				streams = append(streams, stream)
				consumed.Add(1)
				// Not on e.Go: consumers outlive the injection window and
				// exit when Stop cancels the streams.
				go func(channel string, stream *fabric.BlockStream) {
					defer consumed.Done()
					var next uint64
					var prev *fabric.Block
					for b := range stream.Blocks() {
						if b.Header.Number != next {
							e.Violate(name, "%s delivered block %d, want %d (gap or duplicate)",
								channel, b.Header.Number, next)
							return
						}
						if prev != nil && b.Header.PrevHash != prev.Header.Hash() {
							e.Violate(name, "%s block %d does not hash-chain to block %d",
								channel, b.Header.Number, prev.Header.Number)
							return
						}
						prev = b
						next++
					}
				}(channel, stream)
			}
			return nil
		},
		Stop: func(e *Env) {
			for _, stream := range streams {
				stream.Cancel()
			}
			consumed.Wait()
		},
	}
}

// ShardCatchUp requires, after quiesce, that every node of every shard
// durably holds the full canonical chain of its channel: a shard that was
// stalled by a fault must have caught back up once healed. Polls to absorb
// the post-heal drain.
func ShardCatchUp() Invariant {
	const name = "shard-catch-up"
	return Invariant{
		Name:  name,
		Start: func(e *Env) error { return nil },
		Stop: func(e *Env) {
			deadline := time.Now().Add(15 * time.Second)
			for {
				lag := ""
				for shard, channel := range e.ShardChannels {
					target := e.ChanCanonHeight(channel)
					for i, n := range e.Service.Cluster(shard).Nodes {
						if n == nil {
							continue
						}
						if w := n.PersistWatermark(channel); w < target {
							lag = fmt.Sprintf("shard %d node %d durable watermark %d below canonical height %d",
								shard, i, w, target)
						}
					}
				}
				if lag == "" {
					return
				}
				if time.Now().After(deadline) {
					e.Violate(name, "%s", lag)
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		},
	}
}

// crossOutcome records one cross-shard transaction's coordinator verdict.
type crossOutcome struct {
	tx  sharding.CrossTx
	err error
}

// CrossShardAtomicity drives a continuous stream of two-phase mark/commit
// transactions across every shard's channel while the faults play out,
// then audits each one against the both-or-neither rule: a committed tx
// must be visible in EVERY involved chain, an aborted tx in NONE, and an
// indeterminate tx (commit in flight at deadline) is re-driven to
// completion and must then be visible everywhere.
func CrossShardAtomicity(every time.Duration) Invariant {
	const name = "cross-shard-atomic"
	var mu sync.Mutex
	var outcomes []crossOutcome
	return Invariant{
		Name: name,
		Start: func(e *Env) error {
			channels := make([]string, 0, len(e.ShardChannels))
			for _, shard := range e.Service.Shards() {
				channels = append(channels, e.ShardChannels[shard])
			}
			e.Go(func() {
				opts := sharding.CrossOptions{Timeout: 2 * time.Second, RetryEvery: 100 * time.Millisecond}
				for i := 0; ; i++ {
					if !after(e, every) {
						return
					}
					tx := sharding.CrossTx{
						XID:      fmt.Sprintf("xtx-%d-%d", e.Scenario.Seed, i),
						ClientID: "chaos-cross",
						Channels: channels,
						Payload:  []byte(fmt.Sprintf("cross-payload-%d", i)),
					}
					err := e.LoadRouter.BroadcastCross(tx, opts)
					mu.Lock()
					outcomes = append(outcomes, crossOutcome{tx: tx, err: err})
					mu.Unlock()
				}
			})
			return nil
		},
		Stop: func(e *Env) {
			mu.Lock()
			audit := append([]crossOutcome(nil), outcomes...)
			mu.Unlock()
			if len(audit) == 0 {
				e.Violate(name, "no cross-shard transaction ever ran")
				return
			}
			resumeOpts := sharding.CrossOptions{Timeout: 15 * time.Second, RetryEvery: 200 * time.Millisecond}
			committed, aborted := 0, 0
			for _, o := range audit {
				switch {
				case o.err == nil:
					committed++
				case errors.Is(o.err, sharding.ErrCrossIndeterminate):
					// Recovery path: drive the commit to completion, then
					// hold the tx to the committed standard.
					if err := e.LoadRouter.ResumeCommit(o.tx, resumeOpts); err != nil {
						e.Violate(name, "tx %s: resume after indeterminate failed: %v", o.tx.XID, err)
						continue
					}
					committed++
				case errors.Is(o.err, sharding.ErrCrossAborted):
					aborted++
				default:
					e.Violate(name, "tx %s: unexpected coordinator error: %v", o.tx.XID, o.err)
					continue
				}
				// Audit visibility chain by chain with an independent replay.
				for _, channel := range o.tx.Channels {
					tr := replayVisibility(e, channel, 5*time.Second)
					visible := tr.Visible(o.tx.XID)
					if o.err == nil || errors.Is(o.err, sharding.ErrCrossIndeterminate) {
						if !visible {
							e.Violate(name, "tx %s committed but invisible in %s (atomicity broken)", o.tx.XID, channel)
						}
					} else if visible {
						e.Violate(name, "tx %s aborted but visible in %s (atomicity broken)", o.tx.XID, channel)
					}
				}
			}
			if committed == 0 {
				e.Violate(name, "no cross-shard transaction ever committed (%d aborted) — the protocol never exercised its commit path", aborted)
			}
		},
	}
}

// replayVisibility re-reads a channel's chain from genesis into a fresh
// tracker — the view a late reader computes. The chain is quiesced when
// this runs; the wait bounds the replay of what already exists.
func replayVisibility(e *Env, channel string, wait time.Duration) *sharding.VisibilityTracker {
	tr := sharding.NewVisibilityTracker()
	stream, err := e.Router.Deliver(channel, fabric.DeliverOldest())
	if err != nil {
		return tr
	}
	defer stream.Cancel()
	deadline := time.After(wait)
	target := e.ChanCanonHeight(channel)
	var got uint64
	for got < target {
		select {
		case b, ok := <-stream.Blocks():
			if !ok {
				return tr
			}
			tr.ObserveBlock(b)
			got++
		case <-deadline:
			return tr
		}
	}
	return tr
}

// shardedInvariants is the checker set every sharded scenario runs.
func shardedInvariants(crossEvery time.Duration) []Invariant {
	return []Invariant{
		ShardContinuity(),
		ShardCatchUp(),
		CrossShardAtomicity(crossEvery),
	}
}
