package chaos

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/storage"
)

// DeliverContinuity subscribes from genesis on the observer frontend and
// checks the released stream is gap-free, duplicate-free, and hash-chained:
// every block's number is exactly the next expected and its PrevHash is the
// header hash of its predecessor, across every fault in the scenario.
func DeliverContinuity() Invariant {
	const name = "deliver-continuity"
	var stream *fabric.BlockStream
	consumed := make(chan struct{})
	return Invariant{
		Name: name,
		Start: func(e *Env) error {
			var err error
			stream, err = e.Observer.Deliver(e.Channel, fabric.DeliverFrom(0))
			if err != nil {
				return err
			}
			// Not on e.Go: the consumer outlives the injection window (it
			// checks blocks arriving during quiesce) and exits when Stop
			// cancels the stream.
			go func() {
				defer close(consumed)
				var next uint64
				var prev *fabric.Block
				for b := range stream.Blocks() {
					if b.Header.Number != next {
						e.Violate(name, "stream delivered block %d, want %d (gap or duplicate)",
							b.Header.Number, next)
						return
					}
					if prev != nil && b.Header.PrevHash != prev.Header.Hash() {
						e.Violate(name, "block %d does not hash-chain to block %d",
							b.Header.Number, prev.Header.Number)
						return
					}
					prev = b
					next++
				}
			}()
			return nil
		},
		Stop: func(e *Env) {
			if stream != nil {
				stream.Cancel()
			}
			<-consumed
		},
	}
}

// VerifiedFetch continuously probes FetchRangeVerified through the observer
// frontend: seeded random subranges of the canonical chain are fetched and
// every returned block must match the canonical copy byte-for-hash. This is
// the invariant a forged-history adversary attacks — the f+1 verification
// quorum must keep holding with the adversary live. It fails the run if a
// probe diverges, or if no probe ever succeeded despite available history.
func VerifiedFetch() Invariant {
	const name = "verified-fetch"
	var successes, failures int
	done := make(chan struct{})
	return Invariant{
		Name: name,
		Start: func(e *Env) error {
			rng := rand.New(rand.NewSource(int64(e.Scenario.Seed) + 7))
			e.Go(func() {
				defer close(done)
				ticker := time.NewTicker(200 * time.Millisecond)
				defer ticker.Stop()
				for {
					select {
					case <-e.Done():
						return
					case <-ticker.C:
					}
					canon := e.Canon()
					if len(canon) < 2 {
						continue
					}
					from := uint64(rng.Intn(len(canon) - 1))
					span := uint64(1 + rng.Intn(min(len(canon)-int(from), 8)))
					blocks, err := e.Observer.FetchVerified(e.Channel, from, from+span)
					if err != nil {
						failures++ // transient under partitions/crashes; judged at Stop
						continue
					}
					for i, b := range blocks {
						want := canon[from+uint64(i)]
						if b.Header.Hash() != want.Header.Hash() {
							e.Violate(name,
								"verified fetch of [%d,%d) returned divergent block %d (forged or stale history passed verification)",
								from, from+span, b.Header.Number)
							return
						}
					}
					successes++
				}
			})
			return nil
		},
		Stop: func(e *Env) {
			<-done
			if successes == 0 && e.CanonHeight() > 1 {
				e.Violate(name, "no fetch probe ever succeeded (%d attempts failed) despite %d canonical blocks",
					failures, e.CanonHeight())
			}
		},
	}
}

// WatermarkMonotonic polls every live node's persist watermark: per node
// incarnation it must never regress, and it must never run ahead of the
// ledger height (blocks are enqueued — and the decision token waited out —
// before their put tokens can complete, so a watermark above the ledger
// height would mean durability was claimed for blocks that do not exist).
func WatermarkMonotonic() Invariant {
	const name = "watermark-monotonic"
	return Invariant{
		Name: name,
		Start: func(e *Env) error {
			last := make([]uint64, e.Scenario.Nodes)
			lastEpoch := make([]int, e.Scenario.Nodes)
			e.Go(func() {
				ticker := time.NewTicker(50 * time.Millisecond)
				defer ticker.Stop()
				for {
					select {
					case <-e.Done():
						return
					case <-ticker.C:
					}
					for i := 0; i < e.Scenario.Nodes; i++ {
						n, epoch := e.Node(i)
						if n == nil {
							continue
						}
						w := n.PersistWatermark(e.Channel)
						if led := n.Ledger(e.Channel); led != nil && w > led.Height() {
							e.Violate(name, "node %d watermark %d ahead of ledger height %d", i, w, led.Height())
						}
						if epoch == lastEpoch[i] && w < last[i] {
							e.Violate(name, "node %d watermark regressed %d -> %d within one incarnation", i, last[i], w)
						}
						last[i], lastEpoch[i] = w, epoch
					}
				}
			})
			return nil
		},
		Stop: func(e *Env) {},
	}
}

// DurableFloor requires, after quiesce, that every live node's persist
// watermark covers at least floorFrac of the canonical chain: whatever the
// faults did, the cluster must converge back to durably holding what it
// released. Polls up to 15 seconds to absorb backfill and state transfer.
func DurableFloor(floorFrac float64) Invariant {
	return DurableFloorExcept(floorFrac)
}

// DurableFloorExcept is DurableFloor with exempt node indices: a node
// whose commit log a fault deliberately poisoned (fail-fast fsync) stops
// advancing durability by design, so the floor is asserted on everyone
// else — the cluster as a whole must still durably hold what it released.
func DurableFloorExcept(floorFrac float64, except ...int) Invariant {
	const name = "durable-floor"
	exempt := make(map[int]bool, len(except))
	for _, i := range except {
		exempt[i] = true
	}
	return Invariant{
		Name:  name,
		Start: func(e *Env) error { return nil },
		Stop: func(e *Env) {
			target := uint64(floorFrac * float64(e.CanonHeight()))
			deadline := time.Now().Add(15 * time.Second)
			for {
				lagging := -1
				var lagMark uint64
				for i := 0; i < e.Scenario.Nodes; i++ {
					if exempt[i] {
						continue
					}
					n, _ := e.Node(i)
					if n == nil {
						continue
					}
					if w := n.PersistWatermark(e.Channel); w < target {
						lagging, lagMark = i, w
					}
				}
				if lagging < 0 {
					return
				}
				if time.Now().After(deadline) {
					e.Violate(name, "node %d durable watermark %d below floor %d (canonical height %d)",
						lagging, lagMark, target, e.CanonHeight())
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		},
	}
}

// ScrubHeals audits the corruption ledger after quiesce: every block
// record a disk fault damaged at rest must be readable again from the
// victim's durable store and hash-match the canonical chain — the scrub
// detected the rot and the f+1-verified peer repair healed it. Fails if
// no corruption was ever injected (the fault did not bite) or any damaged
// record is still unreadable or divergent at the deadline.
func ScrubHeals() Invariant {
	const name = "scrub-heals"
	return Invariant{
		Name:  name,
		Start: func(e *Env) error { return nil },
		Stop: func(e *Env) {
			marks := e.CorruptionLedger()
			if len(marks) == 0 {
				e.Violate(name, "no at-rest corruption was ever injected (fault did not bite)")
				return
			}
			canon := e.Canon()
			deadline := time.Now().Add(20 * time.Second)
			for _, m := range marks {
				for {
					n, _ := e.Node(m.Node)
					if n != nil {
						b, err := n.DurableBlock(m.Channel, m.Num)
						if err == nil {
							if m.Num < uint64(len(canon)) && b.Header.Hash() != canon[m.Num].Header.Hash() {
								e.Violate(name, "node %d block %s/%d healed into a copy divergent from the canonical chain",
									m.Node, m.Channel, m.Num)
							}
							break
						}
						if errors.Is(err, storage.ErrRecordGone) {
							break // pruned under retention: nothing left to heal
						}
					}
					if time.Now().After(deadline) {
						e.Violate(name, "node %d block %s/%d still corrupt after the run (self-heal never landed)",
							m.Node, m.Channel, m.Num)
						break
					}
					time.Sleep(100 * time.Millisecond)
				}
			}
		},
	}
}

// NoSilentLoss requires every envelope the load frontend acked to appear
// in the canonical released chain by the end of the run: an acknowledged
// write that vanishes is the one failure an ordering service may never
// exhibit, whatever its disks do. Polls so late-draining tail blocks can
// settle.
func NoSilentLoss() Invariant {
	const name = "no-silent-loss"
	return Invariant{
		Name:  name,
		Start: func(e *Env) error { return nil },
		Stop: func(e *Env) {
			deadline := time.Now().Add(15 * time.Second)
			for {
				pending, sample := e.ackedUndelivered()
				if pending == 0 {
					return
				}
				if time.Now().After(deadline) {
					e.Violate(name, "%d acked envelopes never delivered (e.g. client %s seq %d): an acknowledged write was silently lost",
						pending, sample.client, sample.seq)
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
		},
	}
}

// MetricsSane cross-checks the observability layer against ground truth
// after quiesce: every live node's persist-watermark gauge must converge
// to its PersistWatermark (the gauge is written on the same paths that
// advance the watermark, so divergence means an instrumentation path was
// dropped — exactly the drift crash-restart scenarios provoke), and no
// gathered series may carry NaN, a negative histogram sum, or bucket
// counts that disagree with the observation count.
func MetricsSane() Invariant {
	const name = "metrics-sane"
	return Invariant{
		Name:  name,
		Start: func(e *Env) error { return nil },
		Stop: func(e *Env) {
			reg := e.Metrics
			if reg == nil {
				e.Violate(name, "scenario ran without a metrics registry")
				return
			}
			// Watermark gauge vs PersistWatermark: backfill may still be
			// advancing both, so poll for convergence like DurableFloor.
			deadline := time.Now().Add(10 * time.Second)
			for {
				mismatch := ""
				fam := reg.Family("repro_node_persist_watermark")
				for i := 0; i < e.Scenario.Nodes; i++ {
					n, _ := e.Node(i)
					if n == nil {
						continue // killed: its gauge holds the last incarnation's value
					}
					want := n.PersistWatermark(e.Channel)
					got, ok := gaugeFor(fam, i, e.Channel)
					if !ok {
						mismatch = fmt.Sprintf("node %d has no persist-watermark series for channel %q", i, e.Channel)
						break
					}
					if uint64(got) != want {
						mismatch = fmt.Sprintf("node %d watermark gauge %.0f != PersistWatermark %d", i, got, want)
						break
					}
				}
				if mismatch == "" {
					break
				}
				if time.Now().After(deadline) {
					e.Violate(name, "%s", mismatch)
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			// No series may have gone insane, whatever the faults did.
			for _, f := range reg.Gather() {
				for _, p := range f.Points {
					if math.IsNaN(p.Value) {
						e.Violate(name, "series %s{%s} is NaN", f.Name, p.Labels)
						continue
					}
					if f.Type != obs.TypeHistogram {
						continue
					}
					if p.Value < 0 {
						e.Violate(name, "histogram %s{%s} has negative sum %g", f.Name, p.Labels, p.Value)
					}
					var buckets uint64
					for _, c := range p.Counts {
						buckets += c
					}
					if buckets != p.Count {
						e.Violate(name, "histogram %s{%s} bucket counts sum to %d, observation count %d",
							f.Name, p.Labels, buckets, p.Count)
					}
				}
			}
		},
	}
}

// gaugeFor finds the gauge value for a node/channel point of a family.
func gaugeFor(fam obs.Family, node int, channel string) (float64, bool) {
	nodeLabel := fmt.Sprintf("node=%q", fmt.Sprint(node))
	chanLabel := fmt.Sprintf("channel=%q", channel)
	for _, p := range fam.Points {
		if strings.Contains(p.Labels, nodeLabel) && strings.Contains(p.Labels, chanLabel) {
			return p.Value, true
		}
	}
	return 0, false
}

// MembershipConverged requires, after quiesce, that every live node agrees
// on the group: the same membership epoch and the same member set, matching
// the cluster's view of who is in the group. Scenarios that add, remove,
// replace, or restart nodes include it to prove the reconfiguration (and
// its durable record) fully propagated — a node recovered from disk into a
// stale group would diverge here. Polls up to 10 seconds so lagging state
// transfer can land.
func MembershipConverged() Invariant {
	const name = "membership-converged"
	return Invariant{
		Name:  name,
		Start: func(e *Env) error { return nil },
		Stop: func(e *Env) {
			deadline := time.Now().Add(10 * time.Second)
			for {
				divergence := membershipDivergence(e)
				if divergence == "" {
					return
				}
				if time.Now().After(deadline) {
					e.Violate(name, "%s", divergence)
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		},
	}
}

// membershipDivergence describes the first membership disagreement among
// live nodes, or "" when every view matches the cluster's group.
func membershipDivergence(e *Env) string {
	want := e.Members()
	wantSet := make(map[consensus.ReplicaID]bool, len(want))
	for _, id := range want {
		wantSet[id] = true
	}
	var epoch uint64
	seen := false
	for i := 0; i < e.NodeCount(); i++ {
		n, _ := e.Node(i)
		if n == nil {
			continue
		}
		v := n.MembershipView()
		if len(v.Members) != len(want) {
			return fmt.Sprintf("node %d sees %d members, the cluster has %d", i, len(v.Members), len(want))
		}
		for _, id := range v.Members {
			if !wantSet[id] {
				return fmt.Sprintf("node %d still counts replica %d as a member", i, int(id))
			}
		}
		if seen && v.Epoch != epoch {
			return fmt.Sprintf("membership epochs diverge across live nodes: %d vs %d", v.Epoch, epoch)
		}
		epoch, seen = v.Epoch, true
	}
	if !seen {
		return "no live node to read a membership view from"
	}
	return ""
}

// NoOverPrune continuously polls every live node's retention floor against
// its durable chain: the floor may never pass the height, never regress
// within one node incarnation, and — when the scenario bounds retention —
// never climb into the last RetainBlocks blocks. That retained range is
// exactly what the two-condition reclamation rule guarantees a joining or
// backfilling node can still fetch, so a violation means a node pruned
// history someone was entitled to.
func NoOverPrune() Invariant {
	const name = "no-over-prune"
	return Invariant{
		Name: name,
		Start: func(e *Env) error {
			last := make(map[int]uint64)
			lastEpoch := make(map[int]int)
			ramped := make(map[int]bool)
			e.Go(func() {
				ticker := time.NewTicker(50 * time.Millisecond)
				defer ticker.Stop()
				for {
					select {
					case <-e.Done():
						return
					case <-ticker.C:
					}
					for i := 0; i < e.NodeCount(); i++ {
						n, epoch := e.Node(i)
						if n == nil {
							continue
						}
						led := n.Ledger(e.Channel)
						if led == nil {
							continue
						}
						// Floor before height: the height can only grow
						// between the reads, so a race underestimates the
						// pruning, never fabricates a violation.
						floor := led.Floor()
						height := led.Height()
						if floor > height {
							e.Violate(name, "node %d retention floor %d above chain height %d", i, floor, height)
						}
						if ep, ok := lastEpoch[i]; !ok || ep != epoch {
							ramped[i] = false // fresh incarnation: re-arm below
						}
						// The retained-range rule arms once the incarnation
						// has held a full window: a joining node rebased at
						// the cluster floor legitimately starts with a short
						// span, but a node that once retained RetainBlocks
						// may never prune back into that range.
						if retain := e.Scenario.RetainBlocks; retain > 0 {
							if ramped[i] && floor > height-retain {
								e.Violate(name, "node %d pruned into the retained range: floor %d with height %d, retain %d",
									i, floor, height, retain)
							}
							if height-floor >= retain {
								ramped[i] = true
							}
						}
						if ep, ok := lastEpoch[i]; ok && ep == epoch && floor < last[i] {
							e.Violate(name, "node %d retention floor regressed %d -> %d within one incarnation",
								i, last[i], floor)
						}
						last[i], lastEpoch[i] = floor, epoch
					}
				}
			})
			return nil
		},
		Stop: func(e *Env) {},
	}
}

// LeaderChangeObserved requires that the synchronization phase actually ran:
// some live node must report at least one leader change by the end of the
// run. Scenarios that depose the leader (crash, equivocation) include it to
// prove the fault bit.
func LeaderChangeObserved() Invariant {
	const name = "leader-change"
	return Invariant{
		Name:  name,
		Start: func(e *Env) error { return nil },
		Stop: func(e *Env) {
			for i := 0; i < e.Scenario.Nodes; i++ {
				n, _ := e.Node(i)
				if n != nil && n.Replica().Stats().LeaderChanges >= 1 {
					return
				}
			}
			e.Violate(name, "no live node observed a leader change")
		},
	}
}
