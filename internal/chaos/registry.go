package chaos

import (
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
)

// standardInvariants is the checker set every scenario runs; scenarios add
// LeaderChangeObserved when they depose the leader, and relax the durable
// floor when their world is lossy.
func standardInvariants(floor float64) []Invariant {
	return []Invariant{
		DeliverContinuity(),
		VerifiedFetch(),
		WatermarkMonotonic(),
		DurableFloor(floor),
	}
}

// Scenarios is the named chaos matrix cmd/chaosbench runs and the README
// documents. Every scenario keeps the same 4-node durable cluster under
// continuous load; they differ in the faults injected and the invariants
// those faults attack.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "baseline",
			Description: "no faults: the harness itself must hold every invariant",
			Invariants:  append(standardInvariants(1.0), MetricsSane()),
		},
		{
			Name:        "wan-geo",
			Description: "four continents with seeded jitter and dissemination loss; release rules absorb dropped copies",
			RequestTimeout: 4 * time.Second,
			Duration:       8 * time.Second,
			Faults:         []Fault{WANFault(10, 0.003)},
			Invariants:     standardInvariants(0.9),
		},
		{
			Name:        "partition-heal",
			Description: "a minority replica is partitioned away mid-run and healed; it must catch back up",
			Faults:      []Fault{PartitionFault([]int{1}, 0.25, 0.5)},
			Invariants:  standardInvariants(1.0),
		},
		{
			Name:               "crash-mid-wave",
			Description:        "the leader crashes mid-commit-wave with aggressive checkpoints and recovers from disk; the persist-watermark gate must keep its recovery gap-free",
			CheckpointInterval: 2,
			RequestTimeout:     800 * time.Millisecond,
			Duration:           6 * time.Second,
			Faults:             []Fault{CrashRestartFault(0, 0.33, 0.66)},
			Invariants:         append(standardInvariants(1.0), LeaderChangeObserved(), MetricsSane()),
		},
		{
			Name:           "byzantine-equivocate",
			Description:    "node 0 equivocates at both layers: conflicting consensus proposals and conflicting dissemination copies; the release rules and synchronization phase must hold",
			RequestTimeout: 800 * time.Millisecond,
			Duration:       6 * time.Second,
			Faults: []Fault{ByzantineFault(0,
				consensus.Behavior{Equivocate: true},
				core.Byzantine{EquivocateDissemination: true},
				0.25)},
			Invariants: append(standardInvariants(1.0), LeaderChangeObserved()),
		},
		{
			Name:        "forged-history",
			Description: "node 0 serves a self-signed forged chain to every fetch; f+1 verification must reject it while honest copies keep fetch live",
			Faults: []Fault{ByzantineFault(0,
				consensus.Behavior{},
				core.Byzantine{ForgeHistory: true},
				0.0)},
			Invariants: standardInvariants(1.0),
		},
		{
			Name:        "reconfig-heal",
			Description: "a replica is partitioned, healed, then removed through consensus while it reconciles; the shrunken group keeps ordering",
			Duration:    6 * time.Second,
			Faults: []Fault{
				PartitionFault([]int{3}, 0.15, 0.35),
				ReconfigFault(3, 0.5),
			},
			Invariants: standardInvariants(1.0),
		},
		{
			Name:         "join-under-load",
			Description:  "a fifth node joins from an empty data directory mid-run under live retention: admitted through an ordered add, it bootstraps from the peers' pruning floor via verified fetch and must catch up to the head",
			Duration:     8 * time.Second,
			RetainBlocks: 512,
			Faults:       []Fault{JoinFault(0.3)},
			Invariants:   append(standardInvariants(1.0), MembershipConverged(), NoOverPrune()),
		},
		{
			Name:        "node-replace",
			Description: "a replica is replaced mid-run: the successor joins first so quorum never thins, then the old node is removed through consensus, drains, and leaves",
			Duration:    8 * time.Second,
			Faults:      []Fault{ReplaceFault(1, 0.25)},
			Invariants:  append(standardInvariants(1.0), MembershipConverged()),
		},
		{
			Name:           "rolling-restart",
			Description:    "every node is crash-restarted in sequence under continuous load (the rolling-upgrade procedure); each must recover from disk and catch up before the next goes down, with zero delivery gaps",
			RequestTimeout: 800 * time.Millisecond,
			Duration:       10 * time.Second,
			Faults:         []Fault{RollingRestartFault(0.1, 250 * time.Millisecond)},
			Invariants:     append(standardInvariants(1.0), MembershipConverged(), LeaderChangeObserved()),
		},
		{
			Name:        "disk-bitrot-scrub",
			Description: "silent at-rest corruption of durable block records on one node; the background scrubber must detect it and self-heal from f+1-verified peer copies, with no acked write lost",
			DiskFaults:  true,
			Duration:    8 * time.Second,
			Faults:      []Fault{DiskBitRotFault(2, 0.35, 2)},
			Invariants:  append(standardInvariants(1.0), ScrubHeals(), NoSilentLoss()),
		},
		{
			Name:        "fsync-error-failfast",
			Description: "one node's disk accepts writes but fails every fsync; its commit log must poison itself (fail-fast) and stop advancing durability rather than ack writes the kernel already dropped, while the remaining replicas keep the service live and lossless",
			DiskFaults:  true,
			Duration:    8 * time.Second,
			Faults:      []Fault{FsyncFailFault(3, 0.4)},
			Invariants: []Invariant{
				DeliverContinuity(),
				VerifiedFetch(),
				WatermarkMonotonic(),
				DurableFloorExcept(1.0, 3),
				NoSilentLoss(),
			},
		},
		{
			Name:           "wan-crash-byzantine-disk",
			Description:    "the kitchen sink on a wide-area network: seeded jitter and dissemination loss, a mid-run crash-recovery, a forged-history byzantine, and at-rest disk corruption — the release rules, recovery, verification, and self-healing must all hold at once",
			DiskFaults:     true,
			RequestTimeout: 4 * time.Second,
			Duration:       10 * time.Second,
			Faults: []Fault{
				WANFault(10, 0.003),
				CrashRestartFault(1, 0.3, 0.55),
				ByzantineFault(0, consensus.Behavior{}, core.Byzantine{ForgeHistory: true}, 0.2),
				DiskBitRotFault(2, 0.35, 2),
			},
			Invariants: append(standardInvariants(0.9), ScrubHeals(), NoSilentLoss()),
		},
		{
			Name:        "shard-partition",
			Description: "one consensus group of a 2-shard deployment is split past quorum loss while the other keeps ordering; the healed shard must catch up and cross-shard transactions must stay atomic",
			Shards:      2,
			Duration:    8 * time.Second,
			Faults:      []Fault{ShardPartitionFault(1, 0.25, 0.6)},
			Invariants:  shardedInvariants(300 * time.Millisecond),
		},
		{
			Name:        "cross-shard-atomic",
			Description: "fault-free 2-shard world under a continuous stream of two-phase cross-shard transactions; every one must be visible in both chains or neither",
			Shards:      2,
			Duration:    6 * time.Second,
			Invariants:  shardedInvariants(150 * time.Millisecond),
		},
	}
}

// SoakScenario is the long compounded-disk-fault soak: a minute of
// continuous load while bit-rot keeps landing on two nodes, a third disk
// runs slow, and a fourth goes fsync-dead mid-run. It is deliberately NOT
// in Scenarios() — at ~60s plus quiesce it is far too slow for the
// default matrix — and runs only from the CHAOS_SOAK=1-gated test or an
// explicit `chaosbench -scenario disk-soak`.
func SoakScenario() Scenario {
	return Scenario{
		Name:           "disk-soak",
		Description:    "60s compounded disk-fault soak: recurring at-rest bit-rot on two nodes, sustained storage latency on a third, and a mid-run fsync-dead disk on a fourth — self-healing and fail-fast must hold together under continuous load",
		DiskFaults:     true,
		RequestTimeout: 4 * time.Second,
		Duration:       60 * time.Second,
		Faults: []Fault{
			DiskBitRotFault(2, 0.10, 2),
			DiskBitRotFault(1, 0.30, 2),
			DiskBitRotFault(2, 0.55, 2),
			DiskBitRotFault(1, 0.80, 1),
			DiskLatencyFault(0, 0.25, 2*time.Millisecond),
			FsyncFailFault(3, 0.70),
		},
		Invariants: []Invariant{
			DeliverContinuity(),
			VerifiedFetch(),
			WatermarkMonotonic(),
			DurableFloorExcept(0.9, 3),
			ScrubHeals(),
			NoSilentLoss(),
		},
	}
}

// Lookup resolves a scenario by name (the standard matrix plus the
// off-matrix soak).
func Lookup(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	if s := SoakScenario(); s.Name == name {
		return s, true
	}
	return Scenario{}, false
}
