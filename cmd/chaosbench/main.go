// Command chaosbench runs the chaos scenario matrix — composable fault
// injection (WAN, partitions, crash-restart, byzantine nodes) against
// continuously-checked invariants (deliver continuity, verified fetch,
// watermark monotonicity, durability floors) — and publishes the
// pass/latency matrix as JSON.
//
// Usage:
//
//	chaosbench [-scenario all] [-scale 1.0] [-seed 0] [-out BENCH_scenarios.json] [-v]
//
// -scenario selects one named scenario (see the README's chaos matrix) or
// "all"; -seed overrides every scenario's seed (0 keeps the registry
// defaults, making runs reproducible); -scale multiplies the injection
// windows for quicker smoke runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/chaos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(1)
	}
}

type report struct {
	Scale   float64        `json:"scale"`
	Env     bench.EnvInfo  `json:"env"`
	Results []chaos.Result `json:"results"`
}

func run() error {
	scenario := flag.String("scenario", "all", "scenario name, or all")
	scale := flag.Float64("scale", 1.0, "injection-window multiplier")
	seed := flag.Uint64("seed", 0, "override every scenario seed (0 keeps defaults)")
	out := flag.String("out", "BENCH_scenarios.json", "output JSON path (empty disables)")
	verbose := flag.Bool("v", false, "log scenario progress")
	flag.Parse()

	var scenarios []chaos.Scenario
	if *scenario == "all" {
		scenarios = chaos.Scenarios()
	} else {
		s, ok := chaos.Lookup(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q", *scenario)
		}
		scenarios = []chaos.Scenario{s}
	}

	opts := chaos.Options{Scale: *scale}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	rep := report{Scale: *scale, Env: bench.CaptureEnv()}
	table := bench.NewTable("scenario", "pass", "p50 ms", "p99 ms", "envelopes", "blocks", "durable frac", "failed invariants")
	failed := 0
	// The fault-free baseline's delivered throughput anchors every other
	// scenario's durable fraction: how much acked-and-durable throughput
	// survived the faults.
	var baselineRate float64
	for _, s := range scenarios {
		if *seed != 0 {
			s.Seed = *seed
		}
		res, err := chaos.Run(s, opts)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		rate := 0.0
		if res.DurationSec > 0 {
			rate = float64(res.Delivered) / res.DurationSec
		}
		if res.Scenario == "baseline" {
			baselineRate = rate
		}
		durFrac := ""
		if baselineRate > 0 {
			res.DurableFraction = rate / baselineRate
			durFrac = fmt.Sprintf("%.2f", res.DurableFraction)
		}
		rep.Results = append(rep.Results, res)
		var bad string
		for _, inv := range res.Invariants {
			if !inv.Pass {
				if bad != "" {
					bad += ","
				}
				bad += inv.Name
			}
		}
		if !res.Pass {
			failed++
		}
		table.AddRow(res.Scenario, res.Pass,
			fmt.Sprintf("%.1f", res.P50Ms), fmt.Sprintf("%.1f", res.P99Ms),
			res.Delivered, res.Blocks, durFrac, bad)
	}
	fmt.Print(table.String())

	if *out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *out, len(rep.Results))
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(scenarios))
	}
	return nil
}
