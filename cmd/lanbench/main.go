// Command lanbench regenerates Figure 7 of the paper: ordering-service
// throughput in a LAN for a given cluster size and block size, swept over
// envelope sizes (40 B / 200 B / 1 KB / 4 KB) and receiver counts (1-32).
//
// Usage:
//
//	lanbench [-nodes 4] [-block 10] [-receivers 1,2,4,8,16,32]
//	         [-sizes 40,200,1024,4096] [-clients 16] [-measure 3s]
//	         [-all] [-eq1] [-csv]
//
// -all runs every panel of Figure 7 (4/7/10 nodes x 10/100 envelopes per
// block); -eq1 additionally reports the Equation (1) bound check for each
// (nodes, block) combination.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lanbench:", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 4, "ordering cluster size (4, 7, or 10)")
	block := flag.Int("block", 10, "envelopes per block (10 or 100)")
	receiversFlag := flag.String("receivers", "1,2,4,8,16,32", "receiver counts to sweep")
	sizesFlag := flag.String("sizes", "40,200,1024,4096", "envelope sizes to sweep")
	clients := flag.Int("clients", 16, "closed-loop load clients")
	warmup := flag.Duration("warmup", time.Second, "warmup before measuring")
	measure := flag.Duration("measure", 3*time.Second, "measurement window per cell")
	all := flag.Bool("all", false, "run every Figure 7 panel")
	eq1 := flag.Bool("eq1", false, "also check Equation (1) for each panel")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Parse()

	receivers, err := parseInts(*receiversFlag)
	if err != nil {
		return fmt.Errorf("bad -receivers: %w", err)
	}
	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		return fmt.Errorf("bad -sizes: %w", err)
	}
	base := bench.Fig7Cell{Clients: *clients, Warmup: *warmup, Measure: *measure}

	type panel struct{ nodes, block int }
	panels := []panel{{*nodes, *block}}
	if *all {
		panels = []panel{
			{4, 10}, {4, 100}, {7, 10}, {7, 100}, {10, 10}, {10, 100},
		}
	}
	for _, p := range panels {
		fmt.Printf("# Figure 7: %d orderers, %d envelopes/block\n", p.nodes, p.block)
		rows, err := bench.RunFigure7Panel(p.nodes, p.block, sizes, receivers, base)
		if err != nil {
			return err
		}
		table := bench.NewTable("env_bytes", "receivers", "ktrans/sec", "blocks/sec")
		for _, row := range rows {
			table.AddRow(row.EnvSize, row.Receivers, row.TxPerSec/1000, row.BlockPerSec)
		}
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Print(table.String())
		}
		if *eq1 {
			cell := base
			cell.Nodes = p.nodes
			cell.BlockSize = p.block
			cell.EnvSize = sizes[0]
			cell.Receivers = receivers[0]
			res, err := bench.RunEquation1(cell)
			if err != nil {
				return err
			}
			fmt.Printf("# Equation (1): TP=%.0f <= min(sign %.0f, order %.0f) -> %v\n",
				res.MeasuredTPS, res.SignBoundTPS, res.OrderBoundTPS, res.Satisfied)
		}
		fmt.Println()
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
