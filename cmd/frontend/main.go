// Command frontend runs one ordering-service frontend over TCP: it relays
// envelopes read from stdin (one payload per line) to the ordering cluster
// and prints every released block.
//
// Example against the 4-node cluster of cmd/ordernode:
//
//	frontend -id fe0 -listen :7100 \
//	  -peers 0=localhost:7000,1=localhost:7001,2=localhost:7002,3=localhost:7003 \
//	  -channel demo
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frontend:", err)
		os.Exit(1)
	}
}

func run() error {
	id := flag.String("id", "fe0", "frontend name (must match the nodes' -frontends entry)")
	listen := flag.String("listen", ":7100", "TCP listen address for block reception")
	clientListen := flag.String("client-listen", ":7101", "TCP listen address for the consensus client")
	peersFlag := flag.String("peers", "", "replica address book: id=host:port,...")
	channel := flag.String("channel", "demo", "channel to submit to and deliver from")
	flag.Parse()

	peers, err := parseBook(*peersFlag)
	if err != nil {
		return fmt.Errorf("bad -peers: %w", err)
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peers is required")
	}
	replicas := make([]consensus.ReplicaID, 0, len(peers))
	book := make(map[transport.Addr]string, len(peers))
	for name, hostport := range peers {
		rid, err := strconv.Atoi(name)
		if err != nil {
			return fmt.Errorf("replica id %q is not a number", name)
		}
		replicas = append(replicas, consensus.ReplicaID(rid))
		book[consensus.ReplicaID(rid).Addr()] = hostport
	}

	conn, err := transport.NewTCPTransport(transport.TCPConfig{
		Addr:   transport.Addr(*id),
		Listen: *listen,
		Peers:  book,
	})
	if err != nil {
		return err
	}
	defer conn.Close()
	clientConn, err := transport.NewTCPTransport(transport.TCPConfig{
		Addr:   transport.Addr(*id + "-client"),
		Listen: *clientListen,
		Peers:  book,
	})
	if err != nil {
		return err
	}
	defer clientConn.Close()

	fe, err := core.NewFrontendWithConns(core.FrontendConfig{
		ID:       *id,
		Replicas: replicas,
	}, conn, clientConn)
	if err != nil {
		return err
	}
	defer fe.Close()

	blocks := fe.Deliver(*channel)
	go func() {
		for b := range blocks {
			fmt.Printf("block %d: %d envelopes, hash %s, %d signatures\n",
				b.Header.Number, len(b.Envelopes), b.Header.Hash(), len(b.Signatures))
			for _, raw := range b.Envelopes {
				if env, err := fabric.UnmarshalEnvelope(raw); err == nil {
					fmt.Printf("  %s\n", strings.TrimSpace(string(env.Payload)))
				}
			}
		}
	}()

	fmt.Printf("frontend %s connected to %d ordering nodes; type payloads:\n", *id, len(replicas))
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		env := &fabric.Envelope{
			ChannelID:         *channel,
			ClientID:          *id,
			TimestampUnixNano: time.Now().UnixNano(),
			Payload:           []byte(line),
		}
		if err := fe.Broadcast(env); err != nil {
			return err
		}
	}
	return scanner.Err()
}

// parseBook parses "name=host:port,name=host:port" address books.
func parseBook(s string) (map[string]string, error) {
	out := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("entry %q is not name=host:port", part)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}
