// Command frontend runs one ordering-service frontend over TCP and serves
// the length-framed client protocol (internal/clientapi) to external
// processes: Broadcast with typed status acks and Deliver positioned by a
// seek (oldest / newest / a block number, with an optional stop).
//
// Server mode, against the 4-node cluster of cmd/ordernode:
//
//	frontend -id fe0 -listen :7100 -client-listen :7101 -serve :7102 \
//	  -peers 0=localhost:7000,1=localhost:7001,2=localhost:7002,3=localhost:7003
//
// Client mode (any number of processes, second terminal):
//
//	frontend -connect localhost:7102 -channel demo -seek oldest
//
// Sharded router mode: with -shard-map, the frontend attaches to every
// shard of the map (one consensus group each) and routes Broadcast/Deliver
// by channel → shard behind the same client API. -peers entries carry the
// shard: <shard>.<id>=host:port; per-shard listen addresses come from
// -shard-listen / -shard-client-listen:
//
//	frontend -id fe0 -serve :7102 -shard-map shards.json \
//	  -peers 0.0=localhost:7000,0.1=localhost:7001,1.0=localhost:8000,1.1=localhost:8001 \
//	  -shard-listen 0=:7100,1=:7200 -shard-client-listen 0=:7101,1=:7201
//
// Shard k's nodes must list this frontend as <id>-shard-<k> in their
// -frontends book.
//
// A client broadcasts every stdin line as an envelope payload and prints
// the typed ack; delivered blocks print as they arrive, replayed history
// first when the seek starts below the chain head.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/clientapi"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sharding"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frontend:", err)
		os.Exit(1)
	}
}

func run() error {
	// Server mode.
	id := flag.String("id", "fe0", "frontend name (must match the nodes' -frontends entry)")
	listen := flag.String("listen", ":7100", "TCP listen address for block reception")
	clientListen := flag.String("client-listen", ":7101", "TCP listen address for the consensus client")
	serve := flag.String("serve", ":7102", "TCP listen address for the external client protocol")
	peersFlag := flag.String("peers", "", "replica address book: id=host:port,...")
	channelsFlag := flag.String("channels", "", "optional comma-separated channel allowlist (empty serves all)")
	window := flag.Int("max-inflight", core.DefaultMaxInflight, "per-client backpressure window (envelopes in flight)")
	clientIdle := flag.Duration("client-idle-timeout", clientapi.DefaultIdleTimeout, "silence before the client API pings a connection (negative disables keepalive)")
	clientPing := flag.Duration("client-ping-timeout", clientapi.DefaultPingTimeout, "post-ping grace before a silent client connection is dropped")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics (Prometheus text or ?format=json) and /debug/pprof/; empty disables instrumentation entirely")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")

	// Sharded router mode.
	shardMap := flag.String("shard-map", "", "shard-map JSON file; enables router mode (-peers entries become <shard>.<id>=host:port)")
	shardListen := flag.String("shard-listen", "", "router mode: per-shard block-reception listen addresses: shard=addr,...")
	shardClientListen := flag.String("shard-client-listen", "", "router mode: per-shard consensus-client listen addresses: shard=addr,...")

	// Client mode.
	connect := flag.String("connect", "", "client mode: connect to a frontend's -serve address")
	channel := flag.String("channel", "demo", "client mode: channel to submit to and deliver from")
	seekFlag := flag.String("seek", "newest", "client mode: deliver position: oldest, newest, or a block number")
	until := flag.Int64("until", -1, "client mode: stop (inclusive) block number; -1 tails forever")
	flag.Parse()

	if *connect != "" {
		return runClient(*connect, *channel, *seekFlag, *until)
	}
	if err := setupLogging(*logLevel); err != nil {
		return err
	}
	// Observability: one registry for the process, served over HTTP next to
	// net/http/pprof. A nil registry (flag unset) leaves every instrument
	// nil, which is the near-free disabled path.
	var registry *obs.Registry
	if *metricsAddr != "" {
		registry = obs.NewRegistry()
		ln, err := obs.Serve(*metricsAddr, registry)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		fmt.Printf("metrics and pprof on http://%s/metrics\n", ln.Addr())
	}
	apiOpts := clientapi.ServerOptions{
		IdleTimeout: *clientIdle,
		PingTimeout: *clientPing,
		Metrics:     obs.NewClientAPIMetrics(registry, "frontend", *id),
	}
	if *shardMap != "" {
		return runShardedServer(*id, *serve, *shardMap, *peersFlag, *shardListen, *shardClientListen, *window, apiOpts, registry)
	}
	return runServer(*id, *listen, *clientListen, *serve, *peersFlag, *channelsFlag, *window, apiOpts, registry)
}

// setupLogging installs a leveled text handler on stderr as the process
// default; the ordering stack logs through log/slog with node/shard/
// channel attributes.
func setupLogging(level string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

// ---- server mode -------------------------------------------------------

func runServer(id, listen, clientListen, serve, peersFlag, channelsFlag string, window int, apiOpts clientapi.ServerOptions, registry *obs.Registry) error {
	peers, err := parseBook(peersFlag)
	if err != nil {
		return fmt.Errorf("bad -peers: %w", err)
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peers is required")
	}
	replicas := make([]consensus.ReplicaID, 0, len(peers))
	book := make(map[transport.Addr]string, len(peers))
	for name, hostport := range peers {
		rid, err := strconv.Atoi(name)
		if err != nil {
			return fmt.Errorf("replica id %q is not a number", name)
		}
		replicas = append(replicas, consensus.ReplicaID(rid))
		book[consensus.ReplicaID(rid).Addr()] = hostport
	}
	var channels []string
	if strings.TrimSpace(channelsFlag) != "" {
		channels = strings.Split(channelsFlag, ",")
	}

	conn, err := transport.NewTCPTransport(transport.TCPConfig{
		Addr:   transport.Addr(id),
		Listen: listen,
		Peers:  book,
	})
	if err != nil {
		return err
	}
	defer conn.Close()
	clientConn, err := transport.NewTCPTransport(transport.TCPConfig{
		Addr:   transport.Addr(id + "-client"),
		Listen: clientListen,
		Peers:  book,
	})
	if err != nil {
		return err
	}
	defer clientConn.Close()

	fe, err := core.NewFrontendWithConns(core.FrontendConfig{
		ID:          id,
		Replicas:    replicas,
		Channels:    channels,
		MaxInflight: window,
		// The window is shared by every wire client of this frontend; a
		// bounded wait turns a stalled cluster into SERVICE_UNAVAILABLE
		// acks instead of wedging client connections indefinitely.
		BroadcastTimeout: 10 * time.Second,
		Metrics:          obs.NewFrontendMetrics(registry, "frontend", id),
	}, conn, clientConn)
	if err != nil {
		return err
	}
	defer fe.Close()

	ln, err := net.Listen("tcp", serve)
	if err != nil {
		return err
	}
	srv := clientapi.NewServerWithOptions(fe, apiOpts)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	defer srv.Close()

	scope := "all channels"
	if len(channels) > 0 {
		scope = "channels " + strings.Join(channels, ", ")
	}
	fmt.Printf("frontend %s: %d ordering nodes, client API on %s (%s)\n",
		id, len(replicas), ln.Addr(), scope)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("shutting down")
		return nil
	case err := <-errCh:
		return err
	}
}

// ---- sharded router mode ------------------------------------------------

// runShardedServer attaches one frontend per shard of the map and serves
// the client API through a channel→shard router, so wire clients see one
// ordering service regardless of how many consensus groups back it.
func runShardedServer(id, serve, mapPath, peersFlag, listenFlag, clientListenFlag string, window int, apiOpts clientapi.ServerOptions, registry *obs.Registry) error {
	m, err := sharding.LoadMapFile(mapPath)
	if err != nil {
		return err
	}
	peers, err := parseBook(peersFlag)
	if err != nil {
		return fmt.Errorf("bad -peers: %w", err)
	}
	listens, err := parseBook(listenFlag)
	if err != nil {
		return fmt.Errorf("bad -shard-listen: %w", err)
	}
	clientListens, err := parseBook(clientListenFlag)
	if err != nil {
		return fmt.Errorf("bad -shard-client-listen: %w", err)
	}

	// Split the address book by shard, replica ids strided per group.
	type shardPeers struct {
		replicas []consensus.ReplicaID
		book     map[transport.Addr]string
	}
	byShard := make(map[sharding.ShardID]*shardPeers)
	for name, hostport := range peers {
		shardStr, idStr, ok := strings.Cut(name, ".")
		if !ok {
			return fmt.Errorf("-peers entry %q is not <shard>.<id>=host:port", name)
		}
		shardNum, err1 := strconv.Atoi(shardStr)
		local, err2 := strconv.Atoi(idStr)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("-peers entry %q is not <shard>.<id>=host:port", name)
		}
		shard := sharding.ShardID(shardNum)
		if !m.HasShard(shard) {
			return fmt.Errorf("-peers entry %q names shard %d, not in the map (shards %v)", name, shardNum, m.Shards)
		}
		sp := byShard[shard]
		if sp == nil {
			sp = &shardPeers{book: make(map[transport.Addr]string)}
			byShard[shard] = sp
		}
		rid := consensus.ReplicaID(shardNum*core.ShardStride + local)
		sp.replicas = append(sp.replicas, rid)
		sp.book[rid.Addr()] = hostport
	}

	backends := make(map[sharding.ShardID]sharding.Backend, len(m.Shards))
	var cleanups []func()
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}()
	for _, shard := range m.Shards {
		sp := byShard[shard]
		if sp == nil {
			return fmt.Errorf("shard %d has no -peers entries", shard)
		}
		feID := fmt.Sprintf("%s-shard-%d", id, shard)
		conn, err := transport.NewTCPTransport(transport.TCPConfig{
			Addr:   transport.Addr(feID),
			Listen: listens[strconv.Itoa(int(shard))],
			Peers:  sp.book,
		})
		if err != nil {
			return fmt.Errorf("shard %d transport: %w", shard, err)
		}
		cleanups = append(cleanups, func() { conn.Close() })
		clientConn, err := transport.NewTCPTransport(transport.TCPConfig{
			Addr:   transport.Addr(feID + "-client"),
			Listen: clientListens[strconv.Itoa(int(shard))],
			Peers:  sp.book,
		})
		if err != nil {
			return fmt.Errorf("shard %d client transport: %w", shard, err)
		}
		cleanups = append(cleanups, func() { clientConn.Close() })
		fe, err := core.NewFrontendWithConns(core.FrontendConfig{
			ID:               feID,
			Replicas:         sp.replicas,
			MaxInflight:      window,
			BroadcastTimeout: 10 * time.Second,
			Metrics: obs.NewFrontendMetrics(registry,
				"frontend", id, "shard", strconv.Itoa(int(shard))),
		}, conn, clientConn)
		if err != nil {
			return fmt.Errorf("shard %d frontend: %w", shard, err)
		}
		cleanups = append(cleanups, func() { fe.Close() })
		backends[shard] = fe
	}
	router, err := sharding.NewRouter(m, backends)
	if err != nil {
		return err
	}
	if registry != nil {
		router.InstrumentCross(obs.NewCrossShardMetrics(registry, "router", id))
	}

	ln, err := net.Listen("tcp", serve)
	if err != nil {
		return err
	}
	srv := clientapi.NewServerWithOptions(router, apiOpts)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	defer srv.Close()

	mode := "hash-routed"
	if m.Strict {
		mode = "strict"
	}
	fmt.Printf("frontend %s: routing %d shards (%s), client API on %s\n",
		id, len(m.Shards), mode, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("shutting down")
		return nil
	case err := <-errCh:
		return err
	}
}

// ---- client mode -------------------------------------------------------

func runClient(addr, channel, seekFlag string, until int64) error {
	seek, err := parseSeek(seekFlag)
	if err != nil {
		return err
	}
	if until >= 0 {
		seek = seek.Through(uint64(until))
	}
	cli, err := clientapi.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()

	stream, err := cli.Deliver(channel, seek)
	if err != nil {
		return err
	}
	streamDone := make(chan struct{})
	var streamErr error
	go func() {
		defer close(streamDone)
		for b := range stream.Blocks() {
			fmt.Printf("block %d: %d envelopes, hash %s, %d signatures\n",
				b.Header.Number, len(b.Envelopes), b.Header.Hash(), len(b.Signatures))
			for _, raw := range b.Envelopes {
				if env, err := fabric.UnmarshalEnvelope(raw); err == nil {
					fmt.Printf("  %s\n", strings.TrimSpace(string(env.Payload)))
				}
			}
		}
		if streamErr = stream.Err(); streamErr != nil {
			return
		}
		fmt.Println("stream complete")
	}()

	fmt.Printf("connected to %s, delivering %q from %s; type payloads:\n", addr, channel, seekFlag)
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		env := &fabric.Envelope{
			ChannelID:         channel,
			ClientID:          "frontend-cli",
			TimestampUnixNano: time.Now().UnixNano(),
			Payload:           []byte(line),
		}
		status, detail, err := cli.Broadcast(env)
		if err != nil {
			return err
		}
		if status != fabric.StatusSuccess {
			fmt.Printf("ack %s: %s\n", status, detail)
			continue
		}
		fmt.Printf("ack %s\n", status)
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	// stdin closed: with a stop position, wait for the replay to finish —
	// and fail the process if the stream did, so scripted checks can trust
	// the exit code.
	if seek.HasStop {
		<-streamDone
		if streamErr != nil {
			return fmt.Errorf("deliver: %w", streamErr)
		}
	}
	return nil
}

// parseSeek maps the -seek flag onto a SeekInfo.
func parseSeek(s string) (fabric.SeekInfo, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "oldest":
		return fabric.DeliverOldest(), nil
	case "newest", "":
		return fabric.DeliverNewest(), nil
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return fabric.SeekInfo{}, fmt.Errorf("bad -seek %q: want oldest, newest, or a block number", s)
	}
	return fabric.DeliverFrom(n), nil
}

// parseBook parses "name=host:port,name=host:port" address books.
func parseBook(s string) (map[string]string, error) {
	out := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("entry %q is not name=host:port", part)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}
