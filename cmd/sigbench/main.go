// Command sigbench regenerates Figure 6 of the paper: ECDSA block-signature
// throughput as a function of signing worker threads, for blocks of 10
// zero-byte envelopes.
//
// Usage:
//
//	sigbench [-workers 16] [-envs 10] [-duration 2s] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigbench:", err)
		os.Exit(1)
	}
}

func run() error {
	maxWorkers := flag.Int("workers", 16, "sweep worker counts 1..N")
	envs := flag.Int("envs", 10, "envelopes per block")
	duration := flag.Duration("duration", 2*time.Second, "measurement time per point")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	flag.Parse()

	workers := make([]int, 0, *maxWorkers)
	for w := 1; w <= *maxWorkers; w++ {
		workers = append(workers, w)
	}
	fmt.Printf("# Figure 6: signature generation for Fabric blocks (%d envelopes/block)\n", *envs)
	fmt.Printf("# host parallelism: GOMAXPROCS=%d (the paper's host had 16 hardware threads)\n",
		runtime.GOMAXPROCS(0))

	rows, err := bench.RunFigure6(workers, *envs, *duration)
	if err != nil {
		return err
	}
	table := bench.NewTable("workers", "ksignatures/sec")
	for _, row := range rows {
		table.AddRow(row.Workers, row.SigsPerSec/1000)
	}
	if *csv {
		fmt.Print(table.CSV())
		return nil
	}
	fmt.Print(table.String())
	return nil
}
