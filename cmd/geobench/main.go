// Command geobench regenerates Figures 8 and 9 of the paper: end-to-end
// latency (median and 90th percentile) observed by four frontends spread
// across the Americas, with the ordering nodes distributed worldwide,
// comparing classic BFT-SMaRt (4 replicas) against WHEAT (5 replicas with
// binary vote weights and tentative execution).
//
// Usage:
//
//	geobench [-block 10] [-sizes 40,200,1024,4096] [-measure 6s]
//	         [-window 128] [-csv]
//
// Block size 10 reproduces Figure 8; 100 reproduces Figure 9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geobench:", err)
		os.Exit(1)
	}
}

func run() error {
	block := flag.Int("block", 10, "envelopes per block (10 = Figure 8, 100 = Figure 9)")
	sizesFlag := flag.String("sizes", "40,200,1024,4096", "envelope sizes to sweep")
	measure := flag.Duration("measure", 6*time.Second, "measurement window per run")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup before measuring")
	window := flag.Int("window", 128, "outstanding envelopes per frontend")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		return fmt.Errorf("bad -sizes: %w", err)
	}
	figure := 8
	if *block >= 100 {
		figure = 9
	}
	fmt.Printf("# Figure %d: geo-distributed latency, blocks of %d envelopes\n", figure, *block)
	fmt.Printf("# nodes: Oregon, Ireland, Sydney, Sao Paulo (+Virginia for WHEAT)\n")
	fmt.Printf("# frontends: Canada, Oregon (Vmax leader), Virginia (Vmax), Sao Paulo (Vmin)\n")

	table := bench.NewTable("frontend", "protocol", "env_bytes", "median_ms", "p90_ms", "tx/sec", "samples")
	for _, size := range sizes {
		for _, protocol := range []bench.GeoProtocol{bench.ProtocolBFTSmart, bench.ProtocolWheat} {
			rows, err := bench.RunGeoCell(bench.GeoCell{
				Protocol:          protocol,
				BlockSize:         *block,
				EnvSize:           size,
				WindowPerFrontend: *window,
				Warmup:            *warmup,
				Measure:           *measure,
			})
			if err != nil {
				return err
			}
			for _, row := range rows {
				table.AddRow(string(row.Frontend), string(row.Protocol), row.EnvSize,
					row.MedianMs, row.P90Ms, row.TxPerSec, row.Samples)
			}
		}
	}
	if *csv {
		fmt.Print(table.CSV())
		return nil
	}
	fmt.Print(table.String())
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
