// Command ordernode runs one BFT-SMaRt ordering node over TCP, for
// multi-process (or multi-host) deployments.
//
// Every node needs the full address book of the cluster plus any frontends
// it should be able to push blocks to. Example 4-node cluster on one host:
//
//	ordernode -id 0 -listen :7000 \
//	  -peers 0=localhost:7000,1=localhost:7001,2=localhost:7002,3=localhost:7003 \
//	  -frontends fe0=localhost:7100 \
//	  -block 10 -key node0.key
//
// Keys: run with -genkey to write a fresh ECDSA key pair and the public
// key's hex to stdout, then distribute the public keys via -registry
// entries (id=hexpubkey).
package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/sharding"
	"repro/internal/storage"
	"repro/internal/storage/retention"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ordernode:", err)
		os.Exit(1)
	}
}

func run() error {
	id := flag.Int("id", 0, "replica id")
	listen := flag.String("listen", ":7000", "TCP listen address")
	peersFlag := flag.String("peers", "", "replica address book: id=host:port,...")
	frontsFlag := flag.String("frontends", "", "frontend address book: name=host:port,...")
	block := flag.Int("block", 10, "envelopes per block")
	blockTimeout := flag.Duration("block-timeout", 500*time.Millisecond, "partial-block cut timeout (0 disables)")
	batch := flag.Int("batch", 400, "consensus batch limit")
	workers := flag.Int("workers", 16, "signing workers")
	dataDir := flag.String("data-dir", "", "durable storage directory (unified commit log + checkpoints); empty runs in-memory")
	walSegment := flag.Int64("wal-segment-bytes", 4<<20, "unified commit-log segment size; segments are reclaimed only once behind the consensus checkpoint AND below every channel's retention floor")
	checkpointIvl := flag.Int64("checkpoint-interval", 0, "decisions between consensus checkpoints (0 = default); checkpoints make decision records reclaimable")
	retainBlocks := flag.Uint64("retain-blocks", 0, "durable blocks retained per channel before block-store compaction prunes below the floor (0 = retain everything)")
	retainBytes := flag.Int64("retain-bytes", 0, "block-store on-disk size that triggers compaction (0 = no bytes trigger); SIGHUP forces a compaction")
	retainWeights := flag.String("retain-weights", "", "per-channel weights for the -retain-bytes budget: channel=weight,... (unlisted channels weigh 1)")
	shard := flag.Int("shard", 0, "shard (consensus group) this node belongs to; -id and -peers ids are local to the shard")
	shardMap := flag.String("shard-map", "", "optional shard-map JSON file; validated, and -shard must be in its shard set")
	commitDelay := flag.Duration("commit-max-delay", 0, "fsync coalescing window of the commit queue (0 = commit greedily); longer waves trade commit latency for fewer fsyncs — each wave is exactly one fsync")
	commitBatch := flag.Int("commit-max-batch", 0, "max records merged into a single fsync wave (0 = default 1024)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics (Prometheus text or ?format=json) and /debug/pprof/; empty disables instrumentation entirely")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	join := flag.Bool("join", false, "join an existing cluster: announce this node through an ordered membership add, then catch up via state transfer and verified block fetch from the peers' retention floor; -peers must list the current group plus this node")
	joinTimeout := flag.Duration("join-timeout", 60*time.Second, "hard deadline for -join; exceeding it exits with the typed join error")
	scrubInterval := flag.Duration("scrub-interval", 5*time.Minute, "background bit-rot scrub period over the durable block records; corrupt records are repaired from peers via f+1-verified fetch (0 disables timed passes)")
	recoverFromPeers := flag.Bool("recover-from-peers", false, "destructive last resort when -data-dir fails recovery with corruption: WIPE the data directory and rebuild this node's state from the peers (join-style state transfer + verified block fetch); refuses to act on non-corruption errors")
	genkey := flag.Bool("genkey", false, "generate a key pair, print it, and exit")
	flag.Parse()

	if *genkey {
		return generateKey()
	}
	if err := setupLogging(*logLevel); err != nil {
		return err
	}
	if *shard < 0 {
		return fmt.Errorf("-shard must be >= 0")
	}
	if *shardMap != "" {
		m, err := sharding.LoadMapFile(*shardMap)
		if err != nil {
			return err
		}
		if !m.HasShard(sharding.ShardID(*shard)) {
			return fmt.Errorf("shard %d is not in the shard map %s (shards %v)", *shard, *shardMap, m.Shards)
		}
	}
	weights, err := parseWeights(*retainWeights)
	if err != nil {
		return fmt.Errorf("bad -retain-weights: %w", err)
	}
	peers, err := parseBook(*peersFlag)
	if err != nil {
		return fmt.Errorf("bad -peers: %w", err)
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peers is required")
	}
	fronts, err := parseBook(*frontsFlag)
	if err != nil {
		return fmt.Errorf("bad -frontends: %w", err)
	}

	// Build the address book: replicas by canonical address, frontends
	// under their own names plus their client endpoints. Shard k's
	// replicas take the strided id range k*ShardStride+i, so groups of a
	// multi-shard deployment never collide in the address space.
	selfID := consensus.ReplicaID(*shard*core.ShardStride + *id)
	replicas := make([]consensus.ReplicaID, 0, len(peers))
	book := make(map[transport.Addr]string, len(peers)+len(fronts))
	for name, hostport := range peers {
		local, err := strconv.Atoi(name)
		if err != nil {
			return fmt.Errorf("replica id %q is not a number", name)
		}
		rid := consensus.ReplicaID(*shard*core.ShardStride + local)
		replicas = append(replicas, rid)
		book[rid.Addr()] = hostport
	}
	for name, hostport := range fronts {
		book[transport.Addr(name)] = hostport
	}

	// Observability: one registry for the process, served over HTTP next
	// to net/http/pprof. A nil registry (flag unset) leaves every
	// instrument nil, which is the near-free disabled path.
	var registry *obs.Registry
	if *metricsAddr != "" {
		registry = obs.NewRegistry()
		ln, err := obs.Serve(*metricsAddr, registry)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		fmt.Printf("metrics and pprof on http://%s/metrics\n", ln.Addr())
	}
	labels := []string{"shard", strconv.Itoa(*shard), "node", strconv.Itoa(*id)}

	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		return err
	}
	conn, err := transport.NewTCPTransport(transport.TCPConfig{
		Addr:   selfID.Addr(),
		Listen: *listen,
		Peers:  book,
	})
	if err != nil {
		return err
	}
	defer conn.Close()

	makeNode := func() (*core.OrderingNode, error) {
		return core.NewNode(core.NodeConfig{
			Consensus: consensus.Config{
				SelfID:             selfID,
				Replicas:           replicas,
				BatchSize:          *batch,
				CheckpointInterval: *checkpointIvl,
				Key:                key,
			},
			BlockSize:       *block,
			BlockTimeout:    *blockTimeout,
			SigningWorkers:  *workers,
			Key:             key,
			ShardID:         *shard,
			DataDir:         *dataDir,
			WALSegmentBytes: *walSegment,
			RetainBlocks:    *retainBlocks,
			RetainBytes:     *retainBytes,
			RetainWeights:   weights,
			CommitMaxDelay:  *commitDelay,
			CommitMaxBatch:  *commitBatch,
			ScrubInterval:   *scrubInterval,
			Metrics:         obs.NewNodeMetrics(registry, labels...),
			StorageMetrics:  obs.NewStorageMetrics(registry, labels...),
		}, conn)
	}
	node, err := makeNode()
	wiped := false
	if err != nil && *recoverFromPeers && *dataDir != "" && isCorruption(err) {
		// The disk lost data the scrubber cannot repair in place (mid-log
		// damage, rotten checkpoint + .prev, corrupt membership record).
		// The operator asked for the last resort: discard the local state
		// and rebuild from the peers, whose f+1-verified history is the
		// authoritative copy anyway.
		slog.Error("local recovery failed with corruption; wiping data dir and rebuilding from peers",
			"data-dir", *dataDir, "err", err)
		if err := os.RemoveAll(*dataDir); err != nil {
			return fmt.Errorf("-recover-from-peers: wiping %s: %w", *dataDir, err)
		}
		wiped = true
		node, err = makeNode()
	}
	if err != nil {
		return err
	}
	node.Start()
	defer node.Stop()
	if *join || wiped {
		// A wiped node re-announces itself through the ordered membership
		// add (a no-op for an existing member) and catches up via state
		// transfer + verified block fetch — the same path a fresh join
		// takes.
		if err := node.Join(core.JoinOptions{Deadline: *joinTimeout}); err != nil {
			return err
		}
		fmt.Printf("joined the group at membership epoch %d\n", node.MembershipView().Epoch)
	}
	durability := "in-memory"
	if *dataDir != "" {
		durability = "durable at " + *dataDir
	}
	fmt.Printf("ordering node %d (shard %d) listening on %s (%d replicas, block size %d, %s)\n",
		*id, *shard, conn.ListenAddr(), len(replicas), *block, durability)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s == syscall.SIGHUP {
			// Explicit admin trigger: compact the block store now.
			if err := node.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "ordernode: compaction:", err)
			} else {
				fmt.Println("block-store compaction triggered")
			}
			continue
		}
		break
	}
	fmt.Println("shutting down")
	return nil
}

// isCorruption reports whether a node-construction error is durable-state
// corruption — the only failure class -recover-from-peers may destroy a
// data directory over. Anything else (permissions, address in use, bad
// flags) must surface unchanged.
func isCorruption(err error) bool {
	return errors.Is(err, storage.ErrCorrupt) ||
		errors.Is(err, storage.ErrCheckpointCorrupt) ||
		errors.Is(err, storage.ErrMembershipCorrupt) ||
		errors.Is(err, retention.ErrManifestCorrupt)
}

// setupLogging installs a leveled text handler on stderr as the process
// default; the ordering stack logs through log/slog with node/shard/
// channel attributes.
func setupLogging(level string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

func generateKey() error {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return err
	}
	der, err := x509.MarshalECPrivateKey(priv)
	if err != nil {
		return err
	}
	pub, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return err
	}
	fmt.Printf("private: %s\npublic:  %s\n", hex.EncodeToString(der), hex.EncodeToString(pub))
	return nil
}

// parseWeights parses "channel=weight,channel=weight" retention weights.
func parseWeights(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("entry %q is not channel=weight", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("weight %q must be a positive number", kv[1])
		}
		out[kv[0]] = w
	}
	return out, nil
}

// parseBook parses "name=host:port,name=host:port" address books.
func parseBook(s string) (map[string]string, error) {
	out := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("entry %q is not name=host:port", part)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}
