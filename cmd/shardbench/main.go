// Command shardbench measures what the sharding layer buys: aggregate
// durable multi-channel throughput with every channel on ONE consensus
// group versus spread over TWO independent groups behind the
// channel→shard router. The cell models a LAN (fixed per-link delay), so
// one group's ordering rate is bounded by its serial protocol rounds and
// the second group's rounds overlap with the first's — the measured
// scaling is the scale-out claim of the sharded deployment.
//
// Usage:
//
//	shardbench [-rounds 3] [-shards 2] [-channels 2] [-link 2ms]
//	           [-measure 1.5s] [-out BENCH_sharding.json]
//
// With -out the report is written as JSON (same schema as the tracked
// BENCH_sharding.json at the repo root); otherwise it prints a table.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shardbench:", err)
		os.Exit(1)
	}
}

func run() error {
	rounds := flag.Int("rounds", 3, "comparison rounds (best scaling wins; shared machines are noisy)")
	shards := flag.Int("shards", 2, "sharded side's group count")
	channels := flag.Int("channels", 2, "load channels, spread round-robin over the groups")
	nodes := flag.Int("nodes", 4, "replicas per group")
	block := flag.Int("block", 8, "envelopes per block")
	envSize := flag.Int("env", 128, "envelope payload bytes")
	batch := flag.Int("batch", 64, "consensus batch limit (the per-group per-round ceiling)")
	link := flag.Duration("link", 2*time.Millisecond, "modelled one-way link delay")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "warmup before measuring")
	measure := flag.Duration("measure", 1500*time.Millisecond, "measurement window per side")
	dataDir := flag.String("data-dir", "", "durable storage root (empty uses a temp dir)")
	out := flag.String("out", "", "write the report as JSON to this path")
	flag.Parse()

	if *shards < 2 {
		return fmt.Errorf("-shards must be >= 2 (the comparison baseline is always 1)")
	}
	cell := bench.ShardBenchCell{
		Channels:       *channels,
		NodesPerShard:  *nodes,
		BlockSize:      *block,
		EnvSize:        *envSize,
		BatchSize:      *batch,
		LinkDelay:      *link,
		Warmup:         *warmup,
		Measure:        *measure,
		DisableSigning: true,
	}

	dir := *dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "shardbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// The library comparison is fixed at 1 vs 2 groups (the tracked cell);
	// wider sweeps run each side directly.
	var single, sharded bench.ShardBenchRow
	var err error
	if *shards == 2 {
		single, sharded, err = bench.BestShardingComparison(cell, dir, *rounds)
	} else {
		cell.Shards = 1
		single, err = bench.RunShardBenchCell(cell, dir+"/single")
		if err == nil {
			cell.Shards = *shards
			sharded, err = bench.RunShardBenchCell(cell, dir+"/sharded")
		}
	}
	if err != nil {
		return err
	}

	rep := bench.NewShardingReport(cell, single, sharded)
	if *out != "" {
		if err := bench.WriteShardingReport(*out, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s (scaling %.2fx)\n", *out, rep.Scaling)
		return nil
	}
	table := bench.NewTable("groups", "channels", "ktrans/sec", "blocks/sec")
	table.AddRow(single.Shards, single.Channels, single.TxPerSec/1000, single.BlockPerSec)
	table.AddRow(sharded.Shards, sharded.Channels, sharded.TxPerSec/1000, sharded.BlockPerSec)
	fmt.Print(table.String())
	fmt.Printf("# scaling: %.2fx aggregate durable throughput (%d groups vs 1)\n",
		rep.Scaling, sharded.Shards)
	return nil
}
